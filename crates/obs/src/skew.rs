//! Clock-skew estimation for merged cross-process timelines.
//!
//! Each child process of a socket-backend deployment stamps its flight
//! records against its own translation of the supervisor's wall-clock
//! epoch ([`epoch_from_unix_ns`](crate::epoch_from_unix_ns)), so real
//! clock skew between hosts leaks straight into the merged timeline: a
//! delivery can appear *before* its send, and critical-path attribution
//! over such a timeline lies. The fix is the classic NTP/trace-
//! correction move: the dump already contains causal edges — a `Send`
//! on rank *a* must precede the matching `Deliver`/`ReplayStep` on rank
//! *b* — and every such edge bounds the offset difference between the
//! two ranks' clocks. Solving those bounds yields per-rank offsets that
//! restore send ≤ deliver everywhere the skew (not the physics) was the
//! problem.
//!
//! The solver is deliberately minimal-correction: offsets start at zero
//! and are only ever *raised* to satisfy a violated bound (longest-path
//! relaxation, Bellman-Ford style), so a skew-free timeline solves to
//! all-zero offsets and byte-identical output. Bounds from ranks with
//! no inversions stay slack and cost nothing.

//!
//! One constant offset per rank is only honest while the clocks merely
//! *disagree*; once they *drift* (run at slightly different rates — the
//! normal state of unconditioned quartz over long horizons), the best
//! constant still leaves inversions at one end of the run. For that
//! case [`estimate_skew_drift`] generalises the solver to a
//! **piecewise-linear offset track** per rank: the run is cut into
//! uniform time segments, each rank gets an offset anchor at every
//! segment boundary, every causal edge constrains the anchors
//! surrounding its two endpoints (conservatively, so the interpolated
//! offsets are guaranteed to satisfy the edge), and intra-rank
//! continuity constraints bound the slope between neighbouring anchors
//! (which both propagates corrections into quiet segments and keeps
//! corrected per-rank time monotone). The same raise-only relaxation
//! solves the enlarged system; segment count escalates 2, 4, … until
//! the track removes every inversion or a cap is hit, and residual
//! inversions are reported loudly instead of being papered over.

use crate::event::{FlightRecord, ProtoEvent, DISPATCHER_RANK};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One rank's estimated clock offset, as published in the dump header.
/// `offset_ns` is *added* to every timestamp the rank recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankOffset {
    /// The rank the offset applies to.
    pub rank: u32,
    /// Nanoseconds added to the rank's timestamps in the corrected
    /// merge. Non-negative with the raise-only solver, but kept signed:
    /// the header format is honest about the quantity's nature.
    pub offset_ns: i64,
}

/// A piecewise-linear clock-offset track for one rank: offset anchors
/// at uniform segment boundaries, linearly interpolated in between and
/// held constant beyond the ends. `anchors[k]` is the offset (ns, added
/// to the rank's recorded timestamps) at time `start_ns + k * seg_ns`.
/// All-integer so it can ride in the hand-parsed dump header.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffsetTrack {
    /// Timestamp (recorded ns) of the first anchor.
    pub start_ns: u64,
    /// Uniform segment length between anchors, ns.
    pub seg_ns: u64,
    /// Offset anchors, ns; `len() == segments + 1`.
    pub anchors: Vec<i64>,
}

impl OffsetTrack {
    /// The correction to add to a timestamp this rank recorded at
    /// `ts_ns`: linear interpolation between the surrounding anchors,
    /// constant extrapolation outside the anchored range.
    pub fn offset_at(&self, ts_ns: u64) -> i64 {
        let Some(&first) = self.anchors.first() else {
            return 0;
        };
        if self.anchors.len() == 1 || self.seg_ns == 0 || ts_ns <= self.start_ns {
            return first;
        }
        let rel = ts_ns - self.start_ns;
        let k = (rel / self.seg_ns) as usize;
        if k + 1 >= self.anchors.len() {
            return *self.anchors.last().unwrap();
        }
        let a = self.anchors[k] as i128;
        let b = self.anchors[k + 1] as i128;
        let frac = (rel % self.seg_ns) as i128;
        (a + (b - a) * frac / self.seg_ns as i128) as i64
    }

    /// Overall drift rate of the track in parts-per-billion: the slope
    /// from first to last anchor. Display-only; interpolation uses the
    /// individual anchors.
    pub fn drift_ppb(&self) -> i64 {
        if self.anchors.len() < 2 || self.seg_ns == 0 {
            return 0;
        }
        let rise = (*self.anchors.last().unwrap() - self.anchors[0]) as i128;
        let run = (self.seg_ns as i128) * (self.anchors.len() as i128 - 1);
        (rise * 1_000_000_000 / run) as i64
    }
}

/// One rank's offset track as published in the dump header.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankTrack {
    /// The rank the track applies to.
    pub rank: u32,
    /// Timestamp (recorded ns) of the first anchor.
    pub start_ns: u64,
    /// Uniform segment length between anchors, ns.
    pub seg_ns: u64,
    /// Offset anchors, ns.
    pub anchors: Vec<i64>,
}

impl RankTrack {
    /// View the header form as an [`OffsetTrack`].
    pub fn track(&self) -> OffsetTrack {
        OffsetTrack {
            start_ns: self.start_ns,
            seg_ns: self.seg_ns,
            anchors: self.anchors.clone(),
        }
    }
}

/// The result of a skew-estimation pass over a merged timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkewEstimate {
    /// Per-rank constant offsets (ranks absent from the map are
    /// uncorrected). When `track` is non-empty the *track* is what the
    /// merge applies and this map holds each rank's offset at the start
    /// of the run (the track's first anchor) for reporting.
    pub offsets: BTreeMap<u32, i64>,
    /// Per-rank piecewise-linear offset tracks. Empty when a constant
    /// offset per rank sufficed (the common, drift-free case).
    pub track: BTreeMap<u32, OffsetTrack>,
    /// Ranks that appear in the timeline but in no causal edge: their
    /// offset is 0 by construction, not by evidence. Flagged explicitly
    /// in the dump header so a silent gap reads as what it is.
    pub unconstrained: Vec<u32>,
    /// Piecewise segments used by the drift solver (1 = constant).
    pub segments: usize,
    /// Causal send→deliver edges matched in the timeline.
    pub edges: usize,
    /// Deliver-before-send timestamp inversions in the raw timeline.
    pub inversions_before: usize,
    /// Inversions remaining after applying the correction (0 unless the
    /// bound system was infeasible even piecewise).
    pub inversions_after: usize,
    /// `true` when residual inversions remain after the best correction
    /// the solver could find — the clock model (piecewise-linear within
    /// the slope limit) cannot explain the timeline.
    pub infeasible: bool,
}

impl SkewEstimate {
    /// `true` when at least one rank needs a non-zero correction.
    pub fn is_correction(&self) -> bool {
        !self.track.is_empty() || self.offsets.values().any(|&o| o != 0)
    }

    /// The constant offsets in header form, non-zero entries only.
    /// Empty when a track was applied — the track supersedes them.
    pub fn header_offsets(&self) -> Vec<RankOffset> {
        if !self.track.is_empty() {
            return Vec::new();
        }
        self.offsets
            .iter()
            .filter(|(_, &o)| o != 0)
            .map(|(&rank, &offset_ns)| RankOffset { rank, offset_ns })
            .collect()
    }

    /// The piecewise offset tracks in header form (ranks whose track is
    /// not identically zero).
    pub fn header_track(&self) -> Vec<RankTrack> {
        self.track
            .iter()
            .filter(|(_, t)| t.anchors.iter().any(|&a| a != 0))
            .map(|(&rank, t)| RankTrack {
                rank,
                start_ns: t.start_ns,
                seg_ns: t.seg_ns,
                anchors: t.anchors.clone(),
            })
            .collect()
    }

    /// One-line human summary for supervisor and tooling output.
    pub fn summary(&self) -> String {
        let mut out = if !self.is_correction() {
            format!(
                "clock skew: none detected ({} causal edges, {} inversions)",
                self.edges, self.inversions_after
            )
        } else if self.track.is_empty() {
            let offs: Vec<String> = self
                .offsets
                .iter()
                .filter(|(_, &o)| o != 0)
                .map(|(r, o)| format!("rank {r}: {:+.3}ms", *o as f64 / 1e6))
                .collect();
            format!(
                "clock skew: corrected {} -> {} inversion(s) over {} causal edges [{}]",
                self.inversions_before,
                self.inversions_after,
                self.edges,
                offs.join(", ")
            )
        } else {
            let offs: Vec<String> = self
                .track
                .iter()
                .map(|(r, t)| {
                    format!(
                        "rank {r}: {:+.3}ms @start, drift {:+.1}ppm",
                        t.offset_at(t.start_ns) as f64 / 1e6,
                        t.drift_ppb() as f64 / 1e3
                    )
                })
                .collect();
            format!(
                "clock skew: drift-corrected {} -> {} inversion(s) over {} causal edges, \
                 {} segment(s) [{}]",
                self.inversions_before,
                self.inversions_after,
                self.edges,
                self.segments.max(1),
                offs.join(", ")
            )
        };
        if !self.unconstrained.is_empty() {
            let list: Vec<String> = self.unconstrained.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "; rank(s) {} UNCONSTRAINED (no causal edges, offset 0 by construction)",
                list.join(",")
            ));
        }
        if self.infeasible || self.inversions_after > 0 {
            out.push_str(&format!(
                "; WARNING: {} residual inversion(s) — clock model infeasible, \
                 timestamps near them are untrustworthy",
                self.inversions_after
            ));
        }
        out
    }
}

/// A matched causal edge: the earliest `Send` of a `(sender, receiver,
/// sender_clock)` key and one `Deliver`/`ReplayStep` consuming it.
struct CausalPair {
    send_rank: u32,
    send_ts: u64,
    recv_rank: u32,
    recv_ts: u64,
}

/// Match sends to deliveries. Suppressed sends are excluded — a
/// re-executed send whose transmission the peer's watermark suppressed
/// *follows* the delivery it names, so pairing it would manufacture a
/// false constraint. For duplicate keys the earliest send wins (a
/// re-executed wire send is causally after the original), and every
/// delivery occurrence (fresh or replayed) is paired: each one is
/// causally after the earliest send.
fn causal_pairs(timeline: &[FlightRecord]) -> Vec<CausalPair> {
    let mut sends: HashMap<(u32, u32, u64), u64> = HashMap::new();
    for rec in timeline {
        if rec.rank == DISPATCHER_RANK {
            continue;
        }
        if let ProtoEvent::Send {
            to,
            clock,
            disposition,
            ..
        } = &rec.event
        {
            if *disposition == crate::event::SendDisposition::Suppressed {
                continue;
            }
            let slot = sends.entry((rec.rank, *to, *clock)).or_insert(rec.ts_ns);
            if rec.ts_ns < *slot {
                *slot = rec.ts_ns;
            }
        }
    }
    let mut pairs = Vec::new();
    for rec in timeline {
        if rec.rank == DISPATCHER_RANK {
            continue;
        }
        let (from, sender_clock) = match &rec.event {
            ProtoEvent::Deliver {
                from, sender_clock, ..
            }
            | ProtoEvent::ReplayStep {
                from, sender_clock, ..
            } => (*from, *sender_clock),
            _ => continue,
        };
        if let Some(&send_ts) = sends.get(&(from, rec.rank, sender_clock)) {
            pairs.push(CausalPair {
                send_rank: from,
                send_ts,
                recv_rank: rec.rank,
                recv_ts: rec.ts_ns,
            });
        }
    }
    pairs
}

fn inversions(pairs: &[CausalPair], offsets: &BTreeMap<u32, i64>) -> usize {
    pairs
        .iter()
        .filter(|p| {
            let s = p.send_ts as i64 + offsets.get(&p.send_rank).copied().unwrap_or(0);
            let r = p.recv_ts as i64 + offsets.get(&p.recv_rank).copied().unwrap_or(0);
            r < s
        })
        .count()
}

/// Count deliver-before-send timestamp inversions in a raw (or already
/// corrected) timeline — the skew-visibility metric the merge reports.
pub fn count_inversions(timeline: &[FlightRecord]) -> usize {
    inversions(&causal_pairs(timeline), &BTreeMap::new())
}

/// Estimate per-rank clock offsets from the causal edges in `timeline`.
///
/// Every matched pair demands `send_ts + off[s] <= recv_ts + off[r]`,
/// i.e. `off[r] - off[s] >= send_ts - recv_ts`; per ordered rank pair
/// the tightest such lower bound is kept. Offsets start at zero and a
/// longest-path relaxation raises them until every bound holds (at most
/// `ranks` sweeps — further sweeps only chase an infeasible system, so
/// the loop stops there and reports residual inversions instead).
pub fn estimate_skew(timeline: &[FlightRecord]) -> SkewEstimate {
    let pairs = causal_pairs(timeline);
    let mut bounds: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    let mut offsets: BTreeMap<u32, i64> = BTreeMap::new();
    for p in &pairs {
        let lb = p.send_ts as i64 - p.recv_ts as i64;
        let slot = bounds.entry((p.send_rank, p.recv_rank)).or_insert(lb);
        if lb > *slot {
            *slot = lb;
        }
        offsets.entry(p.send_rank).or_insert(0);
        offsets.entry(p.recv_rank).or_insert(0);
    }
    let inversions_before = inversions(&pairs, &BTreeMap::new());
    let sweeps = offsets.len() + 1;
    for _ in 0..sweeps {
        let mut changed = false;
        for (&(a, b), &lb) in &bounds {
            let off_a = offsets[&a];
            let off_b = offsets[&b];
            if off_b - off_a < lb {
                offsets.insert(b, off_a + lb);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let inversions_after = inversions(&pairs, &offsets);
    // Ranks present in the timeline but in no causal pair get an
    // explicit zero entry plus the `unconstrained` flag: "offset 0 by
    // construction" must not be confused with "offset 0 by evidence".
    let mut unconstrained = Vec::new();
    let seen: BTreeSet<u32> = timeline
        .iter()
        .filter(|r| r.rank != DISPATCHER_RANK)
        .map(|r| r.rank)
        .collect();
    for r in seen {
        if let std::collections::btree_map::Entry::Vacant(e) = offsets.entry(r) {
            e.insert(0);
            unconstrained.push(r);
        }
    }
    SkewEstimate {
        offsets,
        track: BTreeMap::new(),
        unconstrained,
        segments: 1,
        edges: pairs.len(),
        inversions_before,
        inversions_after,
        infeasible: inversions_after > 0,
    }
}

/// Hard cap on the piecewise segment escalation. 256 segments over a
/// week-long run is a ~40-minute fit granularity; over a 200ms test
/// run it resolves drift down to the network-latency floor.
const MAX_SEGMENTS: usize = 256;

/// Continuity slope limit between neighbouring anchors, as a fraction
/// of the segment span (numerator/denominator = 1/2 → |drift| ≤ 50%).
/// Keeping the downward slope above −1 guarantees corrected per-rank
/// timestamps stay monotone, which `validate_records` requires.
const SLOPE_LIMIT_NUM: i64 = 1;
const SLOPE_LIMIT_DEN: i64 = 2;

/// Solve per-rank offset anchors for `segs` uniform segments spanning
/// `[t0, t1]`. Returns the per-rank tracks and whether the raise-only
/// relaxation converged (an unconverged system still yields the best
/// monotonicity-safe track found).
fn solve_piecewise(
    pairs: &[CausalPair],
    t0: u64,
    t1: u64,
    segs: usize,
) -> (BTreeMap<u32, OffsetTrack>, bool) {
    let span = ((t1 - t0).max(1)).div_ceil(segs as u64).max(1);
    let limit = ((span as i64) * SLOPE_LIMIT_NUM / SLOPE_LIMIT_DEN).max(1);
    let ranks: BTreeSet<u32> = pairs
        .iter()
        .flat_map(|p| [p.send_rank, p.recv_rank])
        .collect();
    let idx: BTreeMap<u32, usize> = ranks.iter().copied().zip(0..).collect();
    let anchors_per_rank = segs + 1;
    let node = |rank: u32, k: usize| idx[&rank] * anchors_per_rank + k;
    let anchor_lo = |ts: u64| (((ts.max(t0) - t0) / span) as usize).min(segs);

    // Difference constraints `val[to] - val[from] >= lb`, tightest lower
    // bound per node pair. A causal edge constrains *both* anchors
    // surrounding each endpoint, so the interpolated offsets are
    // guaranteed to satisfy it once the anchors do.
    let mut cons: HashMap<(usize, usize), i64> = HashMap::new();
    let mut add = |from: usize, to: usize, lb: i64| {
        let slot = cons.entry((from, to)).or_insert(lb);
        if lb > *slot {
            *slot = lb;
        }
    };
    for p in pairs {
        let lb = p.send_ts as i64 - p.recv_ts as i64;
        let si = anchor_lo(p.send_ts);
        let ri = anchor_lo(p.recv_ts);
        for s_k in [si, (si + 1).min(segs)] {
            for r_k in [ri, (ri + 1).min(segs)] {
                add(node(p.send_rank, s_k), node(p.recv_rank, r_k), lb);
            }
        }
    }
    // Intra-rank continuity: each anchor may sit at most `limit` below
    // its neighbour in either direction. Propagates corrections into
    // quiet segments and bounds the interpolation slope.
    for &r in &ranks {
        for k in 0..segs {
            add(node(r, k), node(r, k + 1), -limit);
            add(node(r, k + 1), node(r, k), -limit);
        }
    }

    let n_nodes = ranks.len() * anchors_per_rank;
    let mut val = vec![0i64; n_nodes];
    let mut converged = false;
    for _ in 0..n_nodes + 1 {
        let mut changed = false;
        for (&(from, to), &lb) in &cons {
            let want = val[from].saturating_add(lb);
            if val[to] < want {
                val[to] = want;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    let mut track = BTreeMap::new();
    for &r in &ranks {
        let mut anchors: Vec<i64> = (0..anchors_per_rank).map(|k| val[node(r, k)]).collect();
        // Monotonicity backstop for the unconverged case: re-impose the
        // downward slope limit by raising, so corrected per-rank time
        // never runs backwards even when the system was infeasible.
        for k in 0..segs {
            let floor = anchors[k] - limit;
            if anchors[k + 1] < floor {
                anchors[k + 1] = floor;
            }
        }
        track.insert(
            r,
            OffsetTrack {
                start_ns: t0,
                seg_ns: span,
                anchors,
            },
        );
    }
    (track, converged)
}

fn inversions_with_track(pairs: &[CausalPair], track: &BTreeMap<u32, OffsetTrack>) -> usize {
    let off = |rank: u32, ts: u64| track.get(&rank).map_or(0, |t| t.offset_at(ts));
    pairs
        .iter()
        .filter(|p| {
            let s = p.send_ts as i64 + off(p.send_rank, p.send_ts);
            let r = p.recv_ts as i64 + off(p.recv_rank, p.recv_ts);
            r < s
        })
        .count()
}

/// Drift-aware skew estimation: constant offsets first (the cheap,
/// byte-stable path that covers pure skew), escalating to a
/// piecewise-linear offset track per rank only when constants leave
/// inversions behind. The returned estimate carries the track in
/// `track` when one was engaged; residual inversions after the best
/// correction mark the estimate `infeasible`.
pub fn estimate_skew_drift(timeline: &[FlightRecord]) -> SkewEstimate {
    let mut est = estimate_skew(timeline);
    if est.inversions_after == 0 {
        return est;
    }
    let pairs = causal_pairs(timeline);
    let t0 = pairs.iter().map(|p| p.send_ts.min(p.recv_ts)).min();
    let t1 = pairs.iter().map(|p| p.send_ts.max(p.recv_ts)).max();
    let (Some(t0), Some(t1)) = (t0, t1) else {
        return est;
    };
    let mut best: Option<(usize, BTreeMap<u32, OffsetTrack>, usize, bool)> = None;
    let mut segs = 2usize;
    while segs <= MAX_SEGMENTS {
        let (track, converged) = solve_piecewise(&pairs, t0, t1.max(t0 + 1), segs);
        let inv = inversions_with_track(&pairs, &track);
        // Fewer residuals wins; on a tie a *converged* (feasible) solve
        // beats one the monotonicity backstop had to rescue.
        let better = best.as_ref().is_none_or(|&(_, _, b_inv, b_conv)| {
            inv < b_inv || (inv == b_inv && converged && !b_conv)
        });
        if better {
            best = Some((segs, track, inv, converged));
        }
        if inv == 0 && converged {
            break;
        }
        segs *= 2;
    }
    if let Some((segments, track, inv_after, converged)) = best {
        if inv_after < est.inversions_after {
            est.offsets = track
                .iter()
                .map(|(&r, t)| (r, t.offset_at(t.start_ns)))
                .collect();
            for &r in &est.unconstrained {
                est.offsets.entry(r).or_insert(0);
            }
            est.track = track;
            est.segments = segments;
            est.inversions_after = inv_after;
            est.infeasible = inv_after > 0 || !converged;
        }
    }
    est
}

/// Apply piecewise offset tracks to a timeline in place. The solver's
/// slope limit keeps corrected per-rank timestamps monotone; callers
/// re-sort by the merge key afterwards.
pub fn apply_track(timeline: &mut [FlightRecord], track: &BTreeMap<u32, OffsetTrack>) {
    if track.is_empty() {
        return;
    }
    for rec in timeline.iter_mut() {
        if let Some(t) = track.get(&rec.rank) {
            rec.ts_ns = (rec.ts_ns as i64)
                .saturating_add(t.offset_at(rec.ts_ns))
                .max(0) as u64;
        }
    }
}

/// Apply per-rank offsets to a timeline in place. Shifting every record
/// of a rank by one constant preserves per-rank timestamp monotonicity;
/// callers re-sort by the merge key afterwards.
pub fn apply_offsets(timeline: &mut [FlightRecord], offsets: &BTreeMap<u32, i64>) {
    if offsets.values().all(|&o| o == 0) {
        return;
    }
    for rec in timeline.iter_mut() {
        if let Some(&off) = offsets.get(&rec.rank) {
            rec.ts_ns = (rec.ts_ns as i64).saturating_add(off).max(0) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn send(to: u32, clock: u64) -> ProtoEvent {
        ProtoEvent::Send {
            to,
            clock,
            bytes: 8,
            disposition: SendDisposition::Wire,
        }
    }

    fn deliver(from: u32, sc: u64, rc: u64) -> ProtoEvent {
        ProtoEvent::Deliver {
            from,
            sender_clock: sc,
            receiver_clock: rc,
            replay: false,
        }
    }

    #[test]
    fn skew_free_timeline_solves_to_zero_offsets() {
        let tl = vec![
            rec(0, 1, 100, send(1, 1)),
            rec(1, 1, 250, deliver(0, 1, 1)),
            rec(1, 2, 300, send(0, 2)),
            rec(0, 2, 450, deliver(1, 2, 2)),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 2);
        assert_eq!(est.inversions_before, 0);
        assert!(!est.is_correction(), "{est:?}");
        assert!(est.header_offsets().is_empty());
        assert_eq!(count_inversions(&tl), 0);
    }

    #[test]
    fn skewed_receiver_is_raised_until_causality_holds() {
        // Rank 1's clock runs 5ms behind: its deliveries appear before
        // rank 0's sends.
        let tl = vec![
            rec(0, 1, 5_000_000, send(1, 1)),
            rec(1, 1, 100_000, deliver(0, 1, 1)),
            rec(0, 2, 5_200_000, send(1, 2)),
            rec(1, 2, 300_000, deliver(0, 2, 2)),
        ];
        let mut est = estimate_skew(&tl);
        assert_eq!(est.inversions_before, 2);
        assert_eq!(est.inversions_after, 0);
        assert!(est.is_correction());
        // The minimal raise puts rank 1 exactly at the tightest bound.
        assert_eq!(est.offsets[&1], 5_000_000 - 100_000);
        assert_eq!(est.offsets[&0], 0);
        let mut corrected = tl.clone();
        apply_offsets(&mut corrected, &est.offsets);
        assert_eq!(count_inversions(&corrected), 0);
        assert!(est.summary().contains("corrected 2 -> 0"));
        // Header form carries only the non-zero entries.
        let hdr = est.header_offsets();
        assert_eq!(hdr.len(), 1);
        assert_eq!(hdr[0].rank, 1);
        est.offsets.clear();
        assert!(est.summary().contains("none") || est.edges > 0);
    }

    #[test]
    fn chained_skew_propagates_through_intermediate_ranks() {
        // 0 -> 1 -> 2 where both 1 and 2 lag; the relaxation must
        // propagate 1's raise into 2's bound.
        let tl = vec![
            rec(0, 1, 10_000_000, send(1, 1)),
            rec(1, 1, 1_000_000, deliver(0, 1, 1)),
            rec(1, 2, 1_100_000, send(2, 2)),
            rec(2, 1, 200_000, deliver(1, 2, 1)),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.inversions_after, 0);
        assert_eq!(est.offsets[&1], 9_000_000);
        // Corrected send at 1: 1_100_000 + 9_000_000 = 10_100_000, so
        // rank 2 must be raised past it.
        assert_eq!(est.offsets[&2], 9_900_000);
    }

    #[test]
    fn suppressed_sends_do_not_create_false_edges() {
        // The delivery precedes the (re-executed, suppressed) send; the
        // pair must not be matched, or the solver would "correct" a
        // perfectly healthy timeline.
        let tl = vec![
            rec(1, 1, 100, deliver(0, 7, 1)),
            rec(
                0,
                7,
                900,
                ProtoEvent::Send {
                    to: 1,
                    clock: 7,
                    bytes: 8,
                    disposition: SendDisposition::Suppressed,
                },
            ),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 0);
        assert!(!est.is_correction());
    }

    #[test]
    fn track_interpolates_between_anchors() {
        let t = OffsetTrack {
            start_ns: 1_000,
            seg_ns: 100,
            anchors: vec![0, 1_000, 1_000],
        };
        assert_eq!(t.offset_at(0), 0); // before start: first anchor
        assert_eq!(t.offset_at(1_000), 0);
        assert_eq!(t.offset_at(1_050), 500); // midway up the first segment
        assert_eq!(t.offset_at(1_100), 1_000);
        assert_eq!(t.offset_at(1_150), 1_000);
        assert_eq!(t.offset_at(9_999), 1_000); // past the end: last anchor
        assert_eq!(t.drift_ppb(), 1_000 * 1_000_000_000 / 200);
        let empty = OffsetTrack::default();
        assert_eq!(empty.offset_at(123), 0);
        assert_eq!(empty.drift_ppb(), 0);
    }

    #[test]
    fn unconstrained_rank_gets_explicit_zero_and_flag() {
        let tl = vec![
            rec(0, 1, 100, send(1, 1)),
            rec(1, 1, 250, deliver(0, 1, 1)),
            // Rank 5 only does local work — no cross-rank evidence.
            rec(5, 1, 400, ProtoEvent::Finish { clock: 1 }),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.offsets.get(&5), Some(&0));
        assert_eq!(est.unconstrained, vec![5]);
        assert!(est.summary().contains("UNCONSTRAINED"));
        // The explicit zero never leaks into the non-zero header list.
        assert!(est.header_offsets().is_empty());
        let drift = estimate_skew_drift(&tl);
        assert_eq!(drift.unconstrained, vec![5]);
    }

    /// Synthetic bidirectional ping-pong where rank 1's clock runs slow
    /// by `drift` (a rate, not an offset). True event times step by
    /// 1ms; wire latency is a fixed 100µs.
    fn drifting_timeline(iters: u64, drift_num: u64, drift_den: u64) -> Vec<FlightRecord> {
        let slow = |t: u64| t - t * drift_num / drift_den;
        let mut tl = Vec::new();
        let delta = 100_000u64; // 100µs latency
        for i in 0..iters {
            let t = 1_000_000 + i * 1_000_000;
            // 0 -> 1: send stamped true, delivery stamped by the slow clock.
            tl.push(rec(0, 2 * i + 1, t, send(1, 2 * i + 1)));
            tl.push(rec(
                1,
                2 * i + 1,
                slow(t + delta),
                deliver(0, 2 * i + 1, 2 * i + 1),
            ));
            // 1 -> 0: send stamped slow, delivery stamped true.
            let t2 = t + 500_000;
            tl.push(rec(1, 2 * i + 2, slow(t2), send(0, 2 * i + 2)));
            tl.push(rec(
                0,
                2 * i + 2,
                t2 + delta,
                deliver(1, 2 * i + 2, 2 * i + 2),
            ));
        }
        tl
    }

    #[test]
    fn constant_offsets_cannot_fix_drift_but_piecewise_can() {
        // 2% drift over 200ms: end-of-run error ≈ 4ms, far above the
        // 100µs latency floor, so the raw timeline inverts and the best
        // constant offset still leaves inversions at one end.
        let tl = drifting_timeline(200, 2, 100);
        let constant = estimate_skew(&tl);
        assert!(constant.inversions_before >= 1, "{constant:?}");
        assert!(
            constant.inversions_after > 0,
            "a constant offset should not be able to explain drift: {constant:?}"
        );
        assert!(constant.infeasible);
        assert!(constant.summary().contains("WARNING"));

        let est = estimate_skew_drift(&tl);
        assert_eq!(est.inversions_after, 0, "{}", est.summary());
        assert!(!est.infeasible);
        assert!(!est.track.is_empty());
        assert!(est.segments >= 2);
        assert!(est.is_correction());
        // The drifting rank's track must climb: its recorded clock runs
        // slow, so late timestamps need a larger correction.
        let t1 = &est.track[&1];
        assert!(
            *t1.anchors.last().unwrap() > t1.anchors[0],
            "track should rise: {t1:?}"
        );
        assert!(
            t1.drift_ppb() > 1_000_000,
            "≈2% drift, got {}",
            t1.drift_ppb()
        );
        // Applying the track heals the timeline.
        let mut corrected = tl.clone();
        apply_track(&mut corrected, &est.track);
        assert_eq!(count_inversions(&corrected), 0);
        // ... without ever running any rank's clock backwards.
        let mut last: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &corrected {
            let prev = last.insert(r.rank, r.ts_ns).unwrap_or(0);
            assert!(r.ts_ns >= prev, "rank {} time ran backwards", r.rank);
        }
        // Header form carries the track, not stale constant offsets.
        assert!(est.header_offsets().is_empty());
        let hdr = est.header_track();
        assert!(hdr.iter().any(|t| t.rank == 1));
        assert!(est.summary().contains("drift-corrected"));
    }

    #[test]
    fn pure_skew_still_solves_with_constant_offsets_under_drift_api() {
        // A constant 5ms lag must not engage the piecewise machinery:
        // same offsets, empty track, byte-stable header.
        let tl = vec![
            rec(0, 1, 5_000_000, send(1, 1)),
            rec(1, 1, 100_000, deliver(0, 1, 1)),
            rec(0, 2, 5_200_000, send(1, 2)),
            rec(1, 2, 300_000, deliver(0, 2, 2)),
        ];
        let est = estimate_skew_drift(&tl);
        assert_eq!(est.inversions_after, 0);
        assert!(est.track.is_empty());
        assert_eq!(est.segments, 1);
        assert_eq!(est.offsets[&1], 4_900_000);
        assert_eq!(est, estimate_skew(&tl));
    }

    #[test]
    fn replay_steps_pair_with_the_original_send() {
        let tl = vec![
            rec(0, 3, 7_000_000, send(1, 3)),
            rec(
                1,
                1,
                500_000,
                ProtoEvent::ReplayStep {
                    from: 0,
                    sender_clock: 3,
                    receiver_clock: 1,
                },
            ),
        ];
        let est = estimate_skew(&tl);
        assert_eq!(est.edges, 1);
        assert_eq!(est.inversions_before, 1);
        assert_eq!(est.inversions_after, 0);
    }
}
