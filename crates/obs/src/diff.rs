//! The `obs_diff` regression oracle: reduce a merged dump to a compact
//! integer-only [`RunProfile`] and compare two profiles under a
//! percentage tolerance.
//!
//! A profile captures the three observability surfaces a performance
//! regression shows up on:
//!
//! 1. the protocol-interval timing summaries (gate wait, EL ack RTT,
//!    checkpoint store, replay) folded from the dump's events;
//! 2. the critical-path wall-clock attribution per edge category
//!    ([`CausalGraph::critical_path`]);
//! 3. the event-kind counters (sends, replays, chaos kills, …).
//!
//! Comparison is deliberately asymmetric where the semantics are:
//! timing and critical-path metrics regress only when the *current*
//! run is slower than baseline beyond tolerance; event counters are
//! gated in both directions, because a run that suddenly replays 10×
//! more — or records no checkpoints at all — has changed behaviour
//! even if it got faster. Tiny absolute values are ignored via a
//! noise floor so nanosecond jitter on near-zero metrics cannot fail
//! a gate.
//!
//! Profiles serialize to integer-only JSON (the vendored write-only
//! `serde_json`) and parse back through this crate's own
//! [`parse`](crate::parse) — the same no-floats discipline as the dump
//! format, so baselines can be committed and diffed as text.

use crate::causal::CausalGraph;
use crate::event::{FlightRecord, ProtoEvent};
use crate::hist::HistSummary;
use crate::jsonparse::{parse, Json};
use crate::timings::{ProtocolTimings, TimingSummary};
use serde::Serialize;
use std::collections::BTreeMap;

/// Timing deltas below this many nanoseconds are never flagged —
/// bucket-floor jitter on near-empty histograms, not regressions.
pub const NOISE_FLOOR_NS: u64 = 1_000;
/// Counter deltas below this many events are never flagged.
pub const NOISE_FLOOR_EVENTS: u64 = 8;

/// A run's compact performance profile, reduced from a merged dump.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct RunProfile {
    /// Records in the source timeline.
    pub records: u64,
    /// Protocol-interval histogram summaries folded from the events.
    pub timings: TimingSummary,
    /// Nanoseconds covered by the critical path (0 when the timeline
    /// has no causal structure).
    pub critical_total_ns: u64,
    /// Critical-path wall-clock per edge category
    /// (`local`/`network`/`gate-wait`/`el-rtt`/`ckpt-store`/`replay`).
    pub critical: BTreeMap<String, u64>,
    /// Records per event kind.
    pub events: BTreeMap<String, u64>,
}

impl RunProfile {
    /// Reduce a merged timeline to its profile.
    pub fn from_dump(timeline: &[FlightRecord]) -> RunProfile {
        let mut timings = ProtocolTimings::new();
        let mut events: BTreeMap<String, u64> = BTreeMap::new();
        for rec in timeline {
            *events.entry(rec.event.kind().to_string()).or_insert(0) += 1;
            match &rec.event {
                ProtoEvent::GateOpen { waited_ns, .. } if *waited_ns > 0 => {
                    timings.gate_wait.record(*waited_ns);
                }
                ProtoEvent::ElAck { rtt_ns, .. } if *rtt_ns > 0 => {
                    timings.el_ack_rtt.record(*rtt_ns);
                }
                ProtoEvent::CkptCommit { store_ns, .. } if *store_ns > 0 => {
                    timings.ckpt_store.record(*store_ns);
                }
                ProtoEvent::ReplayDone { replay_ns, .. } if *replay_ns > 0 => {
                    timings.replay.record(*replay_ns);
                }
                _ => {}
            }
        }
        let (critical_total_ns, critical) =
            match CausalGraph::build(timeline).critical_path(timeline) {
                Some(cp) => (
                    cp.total_ns,
                    cp.by_category
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                ),
                None => (0, BTreeMap::new()),
            };
        RunProfile {
            records: timeline.len() as u64,
            timings: timings.summary(),
            critical_total_ns,
            critical,
            events,
        }
    }

    /// Render the profile as pretty integer-only JSON (committable as
    /// a baseline).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile is all-integer")
    }

    /// Parse a profile previously rendered by [`RunProfile::to_json`].
    pub fn parse(text: &str) -> Result<RunProfile, String> {
        let v = parse(text)?;
        let hist = |v: &Json, key: &str| -> Result<HistSummary, String> {
            let h = v.get(key).ok_or_else(|| format!("missing {key}"))?;
            let f = |k: &str| -> Result<u64, String> {
                h.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{key}.{k}: expected unsigned integer"))
            };
            Ok(HistSummary {
                count: f("count")?,
                sum: f("sum")?,
                min: f("min")?,
                max: f("max")?,
                p50: f("p50")?,
                p90: f("p90")?,
                p99: f("p99")?,
            })
        };
        let map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            match v.get(key) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, val)| {
                        val.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("{key}.{k}: expected unsigned integer"))
                    })
                    .collect(),
                Some(_) => Err(format!("{key}: expected object")),
                None => Err(format!("missing {key}")),
            }
        };
        let timings = v.get("timings").ok_or("missing timings")?;
        Ok(RunProfile {
            records: v
                .get("records")
                .and_then(Json::as_u64)
                .ok_or("missing records")?,
            timings: TimingSummary {
                gate_wait: hist(timings, "gate_wait")?,
                el_ack_rtt: hist(timings, "el_ack_rtt")?,
                ckpt_store: hist(timings, "ckpt_store")?,
                replay: hist(timings, "replay")?,
            },
            critical_total_ns: v
                .get("critical_total_ns")
                .and_then(Json::as_u64)
                .ok_or("missing critical_total_ns")?,
            critical: map("critical")?,
            events: map("events")?,
        })
    }
}

/// One metric whose current value left the tolerance band.
#[derive(Clone, Debug, Serialize)]
pub struct MetricDelta {
    /// Metric path, e.g. `timing/gate_wait/p99_ns`.
    pub metric: String,
    /// Baseline value.
    pub baseline: u64,
    /// Current value.
    pub current: u64,
    /// Signed relative change in percent (current vs baseline;
    /// baseline 0 reports 100% per unit of appearance).
    pub change_pct: i64,
}

/// The obs_diff verdict: which metrics regressed, out of how many
/// compared.
#[derive(Clone, Debug, Serialize)]
pub struct DiffReport {
    /// Tolerance applied, percent.
    pub tolerance_pct: u64,
    /// Metrics compared.
    pub compared: u64,
    /// Metrics outside tolerance, worst relative change first.
    pub regressions: Vec<MetricDelta>,
}

impl DiffReport {
    /// True when every metric stayed inside tolerance.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn change_pct(baseline: u64, current: u64) -> i64 {
    if baseline == 0 {
        return if current == 0 {
            0
        } else {
            100 * current as i64
        };
    }
    let delta = current as i128 - baseline as i128;
    (delta * 100 / baseline as i128) as i64
}

/// Compare `current` against `baseline`: timing and critical-path
/// metrics regress when slower than `tolerance_pct` percent over
/// baseline; event counters when changed beyond tolerance in either
/// direction. See the module docs for the noise floors.
pub fn compare(baseline: &RunProfile, current: &RunProfile, tolerance_pct: u64) -> DiffReport {
    let mut compared = 0u64;
    let mut regressions: Vec<MetricDelta> = Vec::new();
    let mut gate = |metric: String, base: u64, cur: u64, floor: u64, both_ways: bool| {
        compared += 1;
        let worse = cur > base;
        let out_of_band = if worse || both_ways {
            let (lo, hi) = if cur >= base {
                (base, cur)
            } else {
                (cur, base)
            };
            hi - lo > floor && change_pct(lo.max(1), hi) as u64 > tolerance_pct
        } else {
            false
        };
        if out_of_band {
            regressions.push(MetricDelta {
                metric,
                baseline: base,
                current: cur,
                change_pct: change_pct(base, cur),
            });
        }
    };

    let intervals = [
        (
            "gate_wait",
            &baseline.timings.gate_wait,
            &current.timings.gate_wait,
        ),
        (
            "el_ack_rtt",
            &baseline.timings.el_ack_rtt,
            &current.timings.el_ack_rtt,
        ),
        (
            "ckpt_store",
            &baseline.timings.ckpt_store,
            &current.timings.ckpt_store,
        ),
        ("replay", &baseline.timings.replay, &current.timings.replay),
    ];
    for (name, b, c) in intervals {
        for (stat, bv, cv) in [
            ("p50_ns", b.p50, c.p50),
            ("p99_ns", b.p99, c.p99),
            ("sum_ns", b.sum, c.sum),
        ] {
            gate(
                format!("timing/{name}/{stat}"),
                bv,
                cv,
                NOISE_FLOOR_NS,
                false,
            );
        }
    }

    gate(
        "critical/total_ns".to_string(),
        baseline.critical_total_ns,
        current.critical_total_ns,
        NOISE_FLOOR_NS,
        false,
    );
    for (cat, bv) in &baseline.critical {
        let cv = current.critical.get(cat).copied().unwrap_or(0);
        gate(format!("critical/{cat}_ns"), *bv, cv, NOISE_FLOOR_NS, false);
    }
    for (cat, cv) in &current.critical {
        if !baseline.critical.contains_key(cat) {
            gate(format!("critical/{cat}_ns"), 0, *cv, NOISE_FLOOR_NS, false);
        }
    }

    for (kind, bv) in &baseline.events {
        let cv = current.events.get(kind).copied().unwrap_or(0);
        gate(format!("events/{kind}"), *bv, cv, NOISE_FLOOR_EVENTS, true);
    }
    for (kind, cv) in &current.events {
        if !baseline.events.contains_key(kind) {
            gate(format!("events/{kind}"), 0, *cv, NOISE_FLOOR_EVENTS, true);
        }
    }

    regressions.sort_by_key(|d| std::cmp::Reverse(d.change_pct.unsigned_abs()));
    DiffReport {
        tolerance_pct,
        compared,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SendDisposition;

    fn rec(rank: u32, clock: u64, ts_ns: u64, event: ProtoEvent) -> FlightRecord {
        FlightRecord {
            rank,
            clock,
            ts_ns,
            event,
        }
    }

    fn sample_timeline() -> Vec<FlightRecord> {
        vec![
            rec(
                0,
                1,
                1_000,
                ProtoEvent::Send {
                    to: 1,
                    clock: 1,
                    bytes: 8,
                    disposition: SendDisposition::Wire,
                },
            ),
            rec(
                1,
                1,
                90_000,
                ProtoEvent::Deliver {
                    from: 0,
                    sender_clock: 1,
                    receiver_clock: 1,
                    replay: false,
                },
            ),
            rec(
                1,
                2,
                150_000,
                ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 60_000,
                },
            ),
            rec(
                1,
                3,
                400_000,
                ProtoEvent::ElAck {
                    up_to: 1,
                    batches_retired: 1,
                    rtt_ns: 120_000,
                },
            ),
        ]
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let p = RunProfile::from_dump(&sample_timeline());
        assert_eq!(p.records, 4);
        assert_eq!(p.timings.gate_wait.count, 1);
        assert_eq!(p.timings.el_ack_rtt.sum, 120_000);
        assert_eq!(p.events.get("send"), Some(&1));
        let parsed = RunProfile::parse(&p.to_json()).expect("parses");
        assert_eq!(parsed, p);
    }

    #[test]
    fn self_diff_is_clean_at_zero_tolerance() {
        let p = RunProfile::from_dump(&sample_timeline());
        let report = compare(&p, &p, 0);
        assert!(report.is_clean(), "{:?}", report.regressions);
        assert!(report.compared > 0);
    }

    #[test]
    fn slowdown_is_named_and_speedup_is_not() {
        let base = RunProfile::from_dump(&sample_timeline());
        let mut slow = base.clone();
        slow.timings.gate_wait.p99 = base.timings.gate_wait.p99 * 4;
        slow.timings.gate_wait.sum = base.timings.gate_wait.sum * 4;
        let report = compare(&base, &slow, 50);
        assert!(!report.is_clean());
        assert!(
            report
                .regressions
                .iter()
                .any(|d| d.metric == "timing/gate_wait/p99_ns"),
            "{:?}",
            report.regressions
        );
        // The inverse comparison is a speedup: timing gates are
        // one-sided, so it stays clean.
        let inverse = compare(&slow, &base, 50);
        assert!(inverse.is_clean(), "{:?}", inverse.regressions);
    }

    #[test]
    fn counter_shifts_gate_both_directions_above_the_floor() {
        let base = RunProfile::from_dump(&sample_timeline());
        let mut changed = base.clone();
        changed.events.insert("send".to_string(), 500);
        let report = compare(&base, &changed, 100);
        assert!(
            report.regressions.iter().any(|d| d.metric == "events/send"),
            "{:?}",
            report.regressions
        );
        // A drop to zero is just as loud.
        let mut vanished = base.clone();
        vanished.events.insert("send".to_string(), 0);
        // ... but only above the absolute floor: 1 -> 0 is noise.
        let quiet = compare(&base, &vanished, 100);
        assert!(quiet.is_clean(), "{:?}", quiet.regressions);
        let mut big = base.clone();
        big.events.insert("send".to_string(), 100);
        let vanish_report = compare(&big, &base, 100);
        assert!(
            vanish_report
                .regressions
                .iter()
                .any(|d| d.metric == "events/send"),
            "{:?}",
            vanish_report.regressions
        );
    }

    #[test]
    fn near_zero_timing_jitter_stays_under_the_noise_floor() {
        let base = RunProfile::from_dump(&sample_timeline());
        let mut jitter = base.clone();
        jitter.timings.replay.p99 = base.timings.replay.p99 + 400;
        jitter.timings.replay.sum = base.timings.replay.sum + 400;
        let report = compare(&base, &jitter, 10);
        assert!(report.is_clean(), "{:?}", report.regressions);
    }
}
