//! A dependency-free live health endpoint.
//!
//! One `std::net::TcpListener` on a background thread serving whatever
//! page the owner last [`publish`](HealthServer::publish)ed, as
//! Prometheus-style text exposition (`text/plain; version=0.0.4`). The
//! dispatcher publishes a fresh snapshot every poll tick, so a soak
//! run can be watched with `curl` while it executes. Rendering the
//! page is the owner's business — this module only owns the socket.

use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A tiny HTTP/1.0 server for one plain-text page.
pub struct HealthServer {
    addr: SocketAddr,
    page: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HealthServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HealthServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving. The initial page says the endpoint is starting.
    pub fn bind(addr: &str) -> std::io::Result<HealthServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let page = Arc::new(Mutex::new(String::from(
            "# mvr_up 0 (dispatcher has not published yet)\n",
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = std::thread::Builder::new()
            .name("mvr-health".into())
            .spawn({
                let page = page.clone();
                let stop = stop.clone();
                move || serve(listener, page, stop)
            })?;
        Ok(HealthServer {
            addr: local,
            page,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the served page.
    pub fn publish(&self, body: String) {
        *self.page.lock() = body;
    }

    /// Stop the server thread and release the socket.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HealthServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, page: Arc<Mutex<String>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let body = page.lock().clone();
                let _ = respond(stream, &body);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn respond(mut stream: TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    // Drain (part of) the request; the path is irrelevant — there is
    // exactly one page.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(resp.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_published_page() {
        let srv = HealthServer::bind("127.0.0.1:0").unwrap();
        srv.publish("mvr_up 1\nmvr_ranks_alive 4\n".into());
        let resp = scrape(srv.local_addr());
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("text/plain"), "{resp}");
        assert!(resp.contains("mvr_ranks_alive 4"), "{resp}");
        // Publishing again replaces the page.
        srv.publish("mvr_up 0\n".into());
        let resp2 = scrape(srv.local_addr());
        assert!(resp2.contains("mvr_up 0"), "{resp2}");
        srv.stop();
    }

    #[test]
    fn stop_releases_the_port() {
        let srv = HealthServer::bind("127.0.0.1:0").unwrap();
        let addr = srv.local_addr();
        srv.stop();
        // The listener is gone: rebinding the same port succeeds.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok());
    }
}
