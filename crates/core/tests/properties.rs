//! Property-based tests of the protocol's core data structures.

use mvr_core::{
    MsgId, Payload, PessimismGate, Rank, ReceptionEvent, ReplayPlan, SenderLog, Watermarks,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Sender log
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum LogOp {
    Append {
        dst: u32,
        clock_step: u64,
        len: usize,
    },
    Collect {
        dst: u32,
        watermark: u64,
    },
}

fn arb_log_ops() -> impl Strategy<Value = Vec<LogOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..4, 1u64..5, 0usize..64).prop_map(|(dst, clock_step, len)| LogOp::Append {
                dst,
                clock_step,
                len
            }),
            (0u32..4, 0u64..120).prop_map(|(dst, watermark)| LogOp::Collect { dst, watermark }),
        ],
        0..60,
    )
}

proptest! {
    /// The log's byte accounting always equals the sum of retained
    /// payloads, and `resend_after` returns exactly the retained clocks
    /// above the threshold, in order.
    #[test]
    fn sender_log_accounting_matches_model(ops in arb_log_ops()) {
        let mut log = SenderLog::new();
        // Reference model: dst -> clock -> len.
        let mut model: BTreeMap<u32, BTreeMap<u64, usize>> = BTreeMap::new();
        let mut clock = 0u64;
        for op in ops {
            match op {
                LogOp::Append { dst, clock_step, len } => {
                    clock += clock_step;
                    log.append(Rank(dst), clock, Payload::filled(0, len));
                    model.entry(dst).or_default().insert(clock, len);
                }
                LogOp::Collect { dst, watermark } => {
                    log.collect(Rank(dst), watermark);
                    if let Some(m) = model.get_mut(&dst) {
                        m.retain(|&c, _| c > watermark);
                    }
                }
            }
            let expect_bytes: u64 =
                model.values().flat_map(|m| m.values()).map(|&l| l as u64).sum();
            prop_assert_eq!(log.bytes_held(), expect_bytes);
            let expect_msgs: usize = model.values().map(|m| m.len()).sum();
            prop_assert_eq!(log.msgs_held(), expect_msgs);
        }
        // Resend correctness for every dst and several thresholds.
        for (&dst, m) in &model {
            for after in [0u64, 1, 5, 50] {
                let got: Vec<u64> =
                    log.resend_after(Rank(dst), after).map(|s| s.sender_clock).collect();
                let expect: Vec<u64> = m.keys().copied().filter(|&c| c > after).collect();
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Re-appending the same (dst, clock) never double-counts.
    #[test]
    fn sender_log_append_idempotent(clocks in proptest::collection::vec(1u64..30, 1..20)) {
        let mut log = SenderLog::new();
        let mut unique = std::collections::BTreeSet::new();
        for c in &clocks {
            log.append(Rank(0), *c, Payload::filled(1, 10));
            unique.insert(*c);
        }
        for c in &clocks {
            log.append(Rank(0), *c, Payload::filled(1, 10)); // replayed
        }
        prop_assert_eq!(log.msgs_held(), unique.len());
        prop_assert_eq!(log.bytes_held(), unique.len() as u64 * 10);
    }
}

// ---------------------------------------------------------------------
// Pessimism gate
// ---------------------------------------------------------------------

proptest! {
    /// The gate is open exactly when every scheduled clock is acked.
    #[test]
    fn gate_open_iff_acked_covers_scheduled(
        steps in proptest::collection::vec((1u64..4, 0u64..8), 0..40)
    ) {
        let mut gate = PessimismGate::new();
        let mut scheduled = 0u64;
        let mut acked = 0u64;
        for (step, ack) in steps {
            scheduled += step;
            gate.on_scheduled(scheduled);
            let up_to = acked.max(ack.min(scheduled));
            gate.on_ack(up_to);
            acked = acked.max(up_to);
            prop_assert_eq!(gate.is_open(), acked >= scheduled);
            prop_assert_eq!(gate.outstanding(), scheduled - acked);
        }
    }
}

// ---------------------------------------------------------------------
// Watermarks
// ---------------------------------------------------------------------

proptest! {
    /// HR is the running maximum of delivered clocks; duplicates are
    /// exactly the non-increasing ones.
    #[test]
    fn watermarks_hr_is_running_max(deliveries in proptest::collection::vec(1u64..50, 0..40)) {
        let mut w = Watermarks::new();
        let mut hi = 0u64;
        for h in deliveries {
            let dup = h <= hi;
            prop_assert_eq!(w.is_duplicate_from(Rank(1), h), dup);
            prop_assert_eq!(w.on_delivery_from(Rank(1), h), !dup);
            hi = hi.max(h);
            prop_assert_eq!(w.hr(Rank(1)), hi);
        }
    }

    /// `set_hs_from_restart` overwrites; `should_transmit_to` is exactly
    /// `h > HS`.
    #[test]
    fn watermarks_hs_restart_semantics(
        transmits in proptest::collection::vec(1u64..50, 0..20),
        restart_at in 0u64..60,
    ) {
        let mut w = Watermarks::new();
        for h in &transmits {
            w.on_transmit_to(Rank(2), *h);
        }
        w.set_hs_from_restart(Rank(2), restart_at);
        prop_assert_eq!(w.hs(Rank(2)), restart_at);
        for h in [restart_at, restart_at + 1, restart_at.saturating_sub(1)] {
            prop_assert_eq!(w.should_transmit_to(Rank(2), h), h > restart_at);
        }
    }
}

// ---------------------------------------------------------------------
// Replay plan
// ---------------------------------------------------------------------

proptest! {
    /// Whatever order the re-sent payloads arrive in, deliveries come out
    /// exactly in receiver-clock order, and unlogged arrivals are
    /// preserved as futures.
    #[test]
    fn replay_plan_enforces_logged_order(
        n_events in 1usize..12,
        shuffle_seed in 0u64..1000,
        n_future in 0usize..4,
    ) {
        // Logged history: events from two senders, receiver clocks 1..=n.
        let events: Vec<ReceptionEvent> = (0..n_events)
            .map(|i| ReceptionEvent {
                sender: Rank((i % 2) as u32),
                sender_clock: (i / 2 + 1) as u64,
                receiver_clock: (i + 1) as u64,
                probes: 0,
            })
            .collect();
        let mut plan = ReplayPlan::new(events.clone());

        // Arrival order: a deterministic shuffle of logged + future ids.
        let mut arrivals: Vec<MsgId> = events.iter().map(|e| e.msg_id()).collect();
        for f in 0..n_future {
            arrivals.push(MsgId::new(Rank(3), (f + 1) as u64));
        }
        let mut s = shuffle_seed.wrapping_mul(2654435761).max(1);
        for i in (1..arrivals.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            arrivals.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let mut delivered = Vec::new();
        let mut clock = 0u64;
        let drain = |plan: &mut ReplayPlan, clock: &mut u64, out: &mut Vec<u64>| {
            while let Some((ev, _)) = plan.try_deliver(*clock).unwrap() {
                *clock = ev.receiver_clock;
                out.push(ev.receiver_clock);
            }
        };
        for id in arrivals {
            plan.offer(id, Payload::empty());
            drain(&mut plan, &mut clock, &mut delivered);
        }
        prop_assert!(plan.is_done());
        let expect: Vec<u64> = (1..=n_events as u64).collect();
        prop_assert_eq!(delivered, expect);
        prop_assert_eq!(plan.future_len(), n_future);
        let futures = plan.into_future_arrivals();
        prop_assert!(futures.iter().all(|(id, _)| id.sender == Rank(3)));
    }
}
