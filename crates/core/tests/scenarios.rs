//! End-to-end protocol scenarios: several `V2Engine`s wired together with
//! an in-test event logger and crash-lossy links, driven by deterministic
//! application scripts. Verifies the headline property of the paper: after
//! any number of fail-stop crashes (with or without checkpoints), the
//! execution is equivalent to a fault-free one — every planned message is
//! delivered exactly once, with the right content.

use mvr_core::engine::{Input, Output};
use mvr_core::{EngineSnapshot, EventBatch, Payload, PeerMsg, Rank, ReceptionEvent, V2Engine};
use std::collections::{BTreeMap, VecDeque};

// ---------------------------------------------------------------------
// Test doubles
// ---------------------------------------------------------------------

/// Reliable in-test event logger: stores per-rank events, acks after a
/// configurable delay (in driver steps) to exercise the pessimism gate.
#[derive(Default)]
struct TestEl {
    events: BTreeMap<Rank, Vec<ReceptionEvent>>,
    /// Acks in flight: (deliver_at_step, rank, up_to).
    pending_acks: VecDeque<(u64, Rank, u64)>,
    ack_delay: u64,
}

impl TestEl {
    fn log(&mut self, now: u64, batch: EventBatch) {
        let v = self.events.entry(batch.owner).or_default();
        let up_to = batch.events.last().map(|e| e.receiver_clock).unwrap_or(0);
        for e in batch.events {
            if v.last()
                .map(|l| l.receiver_clock < e.receiver_clock)
                .unwrap_or(true)
            {
                v.push(e);
            }
        }
        self.pending_acks
            .push_back((now + self.ack_delay, batch.owner, up_to));
    }

    fn due_acks(&mut self, now: u64) -> Vec<(Rank, u64)> {
        let mut out = Vec::new();
        while let Some(&(at, r, up_to)) = self.pending_acks.front() {
            if at <= now {
                self.pending_acks.pop_front();
                out.push((r, up_to));
            } else {
                break;
            }
        }
        out
    }

    fn download(&self, rank: Rank, after: u64) -> Vec<ReceptionEvent> {
        self.events
            .get(&rank)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|e| e.receiver_clock > after)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn drop_acks_for(&mut self, rank: Rank) {
        self.pending_acks.retain(|&(_, r, _)| r != rank);
    }
}

/// Deterministic app payload: a function of (sender, per-sender index).
fn payload_for(sender: u32, index: u32) -> Payload {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&sender.to_le_bytes());
    v.extend_from_slice(&index.to_le_bytes());
    v.extend_from_slice(&(sender.wrapping_mul(2654435761) ^ index).to_le_bytes());
    Payload::from_vec(v)
}

/// One application operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Send(u32),
    Recv,
    Probe,
}

/// The (checkpointable) application state: program counter, per-sender
/// send index, and everything received so far.
#[derive(Clone, Debug, Default)]
struct AppState {
    pc: usize,
    sends_done: u32,
    received: Vec<(u32, Payload)>,
}

struct Node {
    engine: V2Engine,
    state: AppState,
    waiting_recv: bool,
    waiting_probe: bool,
    alive: bool,
    snapshot: Option<(EngineSnapshot, AppState)>,
    ckpt_wanted: bool,
}

struct World {
    scripts: Vec<Vec<Op>>,
    nodes: Vec<Node>,
    el: TestEl,
    /// FIFO links: links[src][dst] = in-flight messages.
    links: Vec<Vec<VecDeque<PeerMsg>>>,
    step_no: u64,
}

impl World {
    fn new(scripts: Vec<Vec<Op>>, ack_delay: u64) -> Self {
        let n = scripts.len();
        let nodes = (0..n)
            .map(|r| Node {
                engine: V2Engine::fresh(Rank(r as u32), n as u32),
                state: AppState::default(),
                waiting_recv: false,
                waiting_probe: false,
                alive: true,
                snapshot: None,
                ckpt_wanted: false,
            })
            .collect();
        World {
            scripts,
            nodes,
            el: TestEl {
                ack_delay,
                ..Default::default()
            },
            links: vec![vec![VecDeque::new(); n]; n],
            step_no: 0,
        }
    }

    fn n(&self) -> usize {
        self.scripts.len()
    }

    fn done(&self) -> bool {
        (0..self.n()).all(|r| {
            let node = &self.nodes[r];
            node.alive && node.state.pc >= self.scripts[r].len() && !node.waiting_recv
        })
    }

    /// Process every output of node `r`'s engine.
    fn drain(&mut self, r: usize) {
        let outs = self.nodes[r].engine.drain_outputs();
        for o in outs {
            match o {
                Output::Transmit { to, msg } => {
                    self.links[r][to.idx()].push_back(msg);
                }
                Output::LogEvents(batch) => {
                    self.el.log(self.step_no, batch);
                }
                Output::Deliver { from, payload } => {
                    let node = &mut self.nodes[r];
                    assert!(node.waiting_recv, "unsolicited delivery");
                    node.waiting_recv = false;
                    node.state.received.push((from.0, payload));
                    node.state.pc += 1;
                }
                Output::ProbeAnswer(_) => {
                    let node = &mut self.nodes[r];
                    assert!(node.waiting_probe);
                    node.waiting_probe = false;
                    node.state.pc += 1;
                }
                Output::ElTruncate { .. } | Output::ReplayComplete => {}
            }
        }
    }

    /// Advance the app of node `r` by one operation if it is runnable.
    fn step_app(&mut self, r: usize) {
        let node = &mut self.nodes[r];
        if !node.alive || node.waiting_recv || node.waiting_probe {
            return;
        }
        let Some(&op) = self.scripts[r].get(node.state.pc) else {
            return;
        };
        match op {
            Op::Send(dst) => {
                let p = payload_for(r as u32, node.state.sends_done);
                node.state.sends_done += 1;
                node.state.pc += 1;
                node.engine
                    .handle(Input::AppSend {
                        dst: Rank(dst),
                        payload: p,
                    })
                    .unwrap();
            }
            Op::Recv => {
                node.waiting_recv = true;
                node.engine.handle(Input::AppRecv).unwrap();
            }
            Op::Probe => {
                node.waiting_probe = true;
                node.engine.handle(Input::AppProbe).unwrap();
            }
        }
        self.drain(r);
    }

    /// Deliver at most one in-flight message per link pair.
    fn step_network(&mut self) {
        for src in 0..self.n() {
            for dst in 0..self.n() {
                if src == dst || !self.nodes[dst].alive {
                    continue;
                }
                if let Some(msg) = self.links[src][dst].pop_front() {
                    self.nodes[dst]
                        .engine
                        .handle(Input::Peer {
                            from: Rank(src as u32),
                            msg,
                        })
                        .expect("replay divergence");
                    self.drain(dst);
                }
            }
        }
    }

    fn step_el(&mut self) {
        for (rank, up_to) in self.el.due_acks(self.step_no) {
            let r = rank.idx();
            if self.nodes[r].alive {
                self.nodes[r].engine.handle(Input::ElAck { up_to }).unwrap();
                self.drain(r);
            }
        }
    }

    fn step(&mut self) {
        self.step_no += 1;
        self.step_el();
        for r in 0..self.n() {
            if self.nodes[r].ckpt_wanted && self.nodes[r].alive {
                self.nodes[r].ckpt_wanted = false;
                self.nodes[r].engine.handle(Input::CheckpointOrder).unwrap();
                self.drain(r);
            }
            // Checkpoint sites: between app steps, poll for an armed
            // checkpoint (the cooperative-checkpointing quiescent point).
            if self.nodes[r].alive && self.nodes[r].engine.try_arm_checkpoint().is_some() {
                let node = &mut self.nodes[r];
                node.snapshot = Some((node.engine.snapshot(), node.state.clone()));
                node.engine
                    .handle(Input::CheckpointStored)
                    .expect("ckpt stored");
                self.drain(r);
            }
            self.step_app(r);
        }
        self.step_network();
    }

    fn crash(&mut self, r: usize) {
        assert!(self.nodes[r].alive);
        self.nodes[r].alive = false;
        // A crash empties every channel touching the node and loses acks.
        for x in 0..self.n() {
            self.links[r][x].clear();
            self.links[x][r].clear();
        }
        self.el.drop_acks_for(Rank(r as u32));
    }

    fn restart(&mut self, r: usize) {
        assert!(!self.nodes[r].alive);
        let (mut engine, state) = match self.nodes[r].snapshot.clone() {
            Some((snap, app)) => (V2Engine::restore(snap), app),
            None => (
                V2Engine::fresh(Rank(r as u32), self.n() as u32),
                AppState::default(),
            ),
        };
        let events = self.el.download(Rank(r as u32), engine.clock());
        engine.begin_recovery(events);
        let node = &mut self.nodes[r];
        node.engine = engine;
        node.state = state;
        node.waiting_recv = false;
        node.waiting_probe = false;
        node.alive = true;
        self.drain(r);
    }

    fn run(&mut self, max_steps: u64) {
        let mut steps = 0;
        while !self.done() {
            self.step();
            steps += 1;
            assert!(steps < max_steps, "world wedged after {steps} steps");
        }
    }

    /// Run with a crash/restart/checkpoint schedule: (at_step, action).
    fn run_with_schedule(&mut self, mut schedule: Vec<(u64, Action)>, max_steps: u64) {
        schedule.sort_by_key(|&(s, _)| s);
        let mut schedule: VecDeque<_> = schedule.into();
        let mut steps = 0u64;
        while !self.done() {
            while let Some(&(at, action)) = schedule.front() {
                if at > self.step_no {
                    break;
                }
                schedule.pop_front();
                match action {
                    Action::Crash(r) => {
                        if self.nodes[r].alive {
                            self.crash(r);
                        }
                    }
                    Action::Restart(r) => {
                        if !self.nodes[r].alive {
                            self.restart(r);
                        }
                    }
                    Action::Checkpoint(r) => {
                        self.nodes[r].ckpt_wanted = true;
                    }
                }
            }
            // Safety: if a node is dead and nothing will restart it, fail.
            self.step();
            steps += 1;
            assert!(steps < max_steps, "world wedged after {steps} steps");
        }
    }

    /// Keep stepping after completion so in-flight control traffic
    /// (EL acks, checkpoint notifications) settles.
    fn cooldown(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    fn received(&self, r: usize) -> &[(u32, Payload)] {
        &self.nodes[r].state.received
    }
}

#[derive(Clone, Copy, Debug)]
enum Action {
    Crash(usize),
    Restart(usize),
    Checkpoint(usize),
}

/// Expected multiset of receptions per rank for a script set: every send
/// must be delivered exactly once with deterministic content.
fn expected_receptions(scripts: &[Vec<Op>]) -> Vec<Vec<(u32, Payload)>> {
    let n = scripts.len();
    let mut out = vec![Vec::new(); n];
    for (src, script) in scripts.iter().enumerate() {
        let mut idx = 0u32;
        for op in script {
            if let Op::Send(dst) = op {
                out[*dst as usize].push((src as u32, payload_for(src as u32, idx)));
                idx += 1;
            }
        }
    }
    for v in &mut out {
        v.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
    }
    out
}

fn check_equivalence(world: &World) {
    let expected = expected_receptions(&world.scripts);
    for (r, want) in expected.iter().enumerate().take(world.n()) {
        let mut got: Vec<(u32, Payload)> = world.received(r).to_vec();
        got.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
        assert_eq!(
            got.len(),
            want.len(),
            "rank {r}: delivered {} messages, expected {}",
            got.len(),
            want.len()
        );
        assert_eq!(
            &got, want,
            "rank {r}: delivered set diverges from fault-free run"
        );
    }
}

/// Token-ring scripts: rank 0 sends then receives; others receive then
/// send — exercises recv-before-send (gate-closed transmissions).
fn ring_scripts(n: usize, rounds: usize) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for _ in 0..rounds {
                if r == 0 {
                    ops.push(Op::Send(1 % n as u32));
                    ops.push(Op::Recv);
                } else {
                    ops.push(Op::Recv);
                    ops.push(Op::Send(((r + 1) % n) as u32));
                }
            }
            ops
        })
        .collect()
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

#[test]
fn fault_free_ring_completes() {
    let scripts = ring_scripts(4, 5);
    let mut w = World::new(scripts, 2);
    w.run(100_000);
    check_equivalence(&w);
}

#[test]
fn fault_free_with_probes() {
    let n = 3;
    let scripts = vec![
        vec![Op::Send(1), Op::Probe, Op::Recv],
        vec![Op::Probe, Op::Recv, Op::Send(2), Op::Send(0)],
        vec![Op::Recv, Op::Probe, Op::Probe],
    ];
    assert_eq!(scripts.len(), n);
    let mut w = World::new(scripts, 1);
    w.run(100_000);
    check_equivalence(&w);
}

#[test]
fn single_crash_no_checkpoint_restarts_from_scratch() {
    let scripts = ring_scripts(4, 6);
    let mut w = World::new(scripts, 2);
    w.run_with_schedule(
        vec![(40, Action::Crash(2)), (45, Action::Restart(2))],
        200_000,
    );
    check_equivalence(&w);
}

#[test]
fn single_crash_with_checkpoint_resumes_midway() {
    let scripts = ring_scripts(4, 8);
    let mut w = World::new(scripts, 2);
    w.run_with_schedule(
        vec![
            (20, Action::Checkpoint(1)),
            (60, Action::Crash(1)),
            (65, Action::Restart(1)),
        ],
        200_000,
    );
    check_equivalence(&w);
    assert!(w.nodes[1].engine.metrics().checkpoints_taken >= 1 || w.nodes[1].snapshot.is_some());
}

#[test]
fn two_concurrent_crashes_recover() {
    let scripts = ring_scripts(5, 6);
    let mut w = World::new(scripts, 2);
    w.run_with_schedule(
        vec![
            (30, Action::Crash(1)),
            (30, Action::Crash(3)),
            (38, Action::Restart(1)),
            (44, Action::Restart(3)),
        ],
        300_000,
    );
    check_equivalence(&w);
}

#[test]
fn all_nodes_crash_and_recover() {
    // n concurrent faults of n processes — the headline tolerance claim.
    let scripts = ring_scripts(4, 5);
    let mut w = World::new(scripts, 2);
    w.run_with_schedule(
        vec![
            (25, Action::Crash(0)),
            (25, Action::Crash(1)),
            (25, Action::Crash(2)),
            (25, Action::Crash(3)),
            (30, Action::Restart(0)),
            (32, Action::Restart(1)),
            (34, Action::Restart(2)),
            (36, Action::Restart(3)),
        ],
        400_000,
    );
    check_equivalence(&w);
}

#[test]
fn repeated_crashes_of_same_node() {
    let scripts = ring_scripts(3, 8);
    let mut w = World::new(scripts, 2);
    w.run_with_schedule(
        vec![
            (15, Action::Checkpoint(1)),
            (30, Action::Crash(1)),
            (33, Action::Restart(1)),
            (50, Action::Crash(1)),
            (53, Action::Restart(1)),
            (70, Action::Crash(1)),
            (75, Action::Restart(1)),
        ],
        400_000,
    );
    check_equivalence(&w);
}

#[test]
fn crash_during_anothers_recovery() {
    let scripts = ring_scripts(4, 8);
    let mut w = World::new(scripts, 3);
    w.run_with_schedule(
        vec![
            (30, Action::Crash(1)),
            (32, Action::Restart(1)),
            // Crash the upstream neighbour while rank 1 is replaying.
            (33, Action::Crash(0)),
            (40, Action::Restart(0)),
        ],
        400_000,
    );
    check_equivalence(&w);
}

#[test]
fn checkpoints_garbage_collect_sender_logs() {
    let scripts = ring_scripts(3, 10);
    let mut w = World::new(scripts, 1);
    w.run_with_schedule(
        vec![
            (20, Action::Checkpoint(0)),
            (20, Action::Checkpoint(1)),
            (20, Action::Checkpoint(2)),
        ],
        200_000,
    );
    w.cooldown(50);
    check_equivalence(&w);
    let freed: u64 = (0..3)
        .map(|r| w.nodes[r].engine.metrics().gc_bytes_freed)
        .sum();
    assert!(
        freed > 0,
        "checkpoint notifications should have freed sender-log bytes"
    );
}

#[test]
fn crash_after_checkpoint_replays_only_tail() {
    let scripts = ring_scripts(3, 10);
    let mut w = World::new(scripts, 1);
    w.run_with_schedule(
        vec![
            (30, Action::Checkpoint(2)),
            (70, Action::Crash(2)),
            (74, Action::Restart(2)),
        ],
        300_000,
    );
    check_equivalence(&w);
    let m = w.nodes[2].engine.metrics();
    // With a checkpoint, the replay covers only post-checkpoint receptions.
    assert!(
        m.replayed_deliveries < 10,
        "replayed {} receptions; checkpoint should have truncated history",
        m.replayed_deliveries
    );
}

#[test]
fn randomized_crash_schedules_many_seeds() {
    // A light-weight randomized sweep (full property tests live in the
    // runtime crate): vary crash times and victims across seeds.
    for seed in 0..25u64 {
        let n = 3 + (seed % 3) as usize; // 3..=5 ranks
        let scripts = ring_scripts(n, 6);
        let victim = (seed % n as u64) as usize;
        let t = 10 + (seed * 7) % 60;
        let mut w = World::new(scripts, 1 + seed % 3);
        let mut schedule = vec![(t, Action::Crash(victim)), (t + 5, Action::Restart(victim))];
        if seed % 2 == 0 {
            schedule.push((t / 2, Action::Checkpoint(victim)));
        }
        if seed % 5 == 1 {
            let second = (victim + 1) % n;
            schedule.push((t + 2, Action::Crash(second)));
            schedule.push((t + 9, Action::Restart(second)));
        }
        let mut w2 = std::mem::replace(&mut w, World::new(vec![], 0));
        w2.run_with_schedule(schedule, 500_000);
        check_equivalence(&w2);
    }
}
