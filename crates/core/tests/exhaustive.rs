//! Bounded exhaustive exploration of the protocol's state space — a mini
//! model checker for the Appendix-A proofs.
//!
//! Small deterministic programs run on a set of engines while the
//! explorer branches over **every interleaving** of in-flight deliveries
//! (peer messages and event-logger acknowledgements). On top of each
//! reachable state it additionally branches a **crash of every rank**,
//! runs the recovery deterministically, and checks that the completed
//! execution is equivalent to a fault-free one (every planned message
//! delivered exactly once, in per-pair order, with the right content).
//!
//! This complements the scenario and property tests: those sample the
//! space; this exhausts it (for small configurations).

use mvr_core::engine::{Input, Output};
use mvr_core::{
    BatchPolicy, EngineSnapshot, EventBatch, Payload, PeerMsg, Rank, ReceptionEvent, V2Engine,
};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Deterministic test programs
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Send(u32),
    Recv,
}

fn payload_for(sender: u32, index: u32) -> Payload {
    Payload::from_vec(vec![sender as u8, index as u8, (sender ^ index) as u8])
}

/// Expected per-rank received sequences (per-pair FIFO; cross-pair order
/// free — we compare multisets per source).
fn expected_per_source(scripts: &[Vec<Op>]) -> Vec<Vec<Vec<Payload>>> {
    let n = scripts.len();
    let mut out = vec![vec![Vec::new(); n]; n]; // [receiver][sender] -> payloads in order
    for (src, script) in scripts.iter().enumerate() {
        let mut idx = 0u32;
        for op in script {
            if let Op::Send(dst) = op {
                out[*dst as usize][src].push(payload_for(src as u32, idx));
                idx += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// The explored world
// ---------------------------------------------------------------------

/// A checkpoint image: engine snapshot plus the process-side state
/// (pc, sends_done, received) captured at the same instant.
type Snapshot = (EngineSnapshot, usize, u32, Vec<(u32, Payload)>);

/// A deliverable in-flight item.
#[derive(Clone, Debug)]
enum Flight {
    Peer { from: Rank, to: Rank, msg: PeerMsg },
    ElAck { to: Rank, up_to: u64 },
}

#[derive(Clone)]
struct World {
    engines: Vec<V2Engine>,
    scripts: Vec<Vec<Op>>,
    pc: Vec<usize>,
    waiting: Vec<bool>,
    sends_done: Vec<u32>,
    received: Vec<Vec<(u32, Payload)>>,
    /// In-flight deliveries; FIFO **per channel**, but the explorer may
    /// interleave across channels (that is the branching).
    flights: VecDeque<Flight>,
    /// The reliable event logger: stored events per rank.
    el: Vec<Vec<ReceptionEvent>>,
    snapshots: Vec<Option<Snapshot>>,
    policy: BatchPolicy,
}

impl World {
    fn new(scripts: Vec<Vec<Op>>, policy: BatchPolicy) -> Self {
        let n = scripts.len();
        World {
            engines: (0..n)
                .map(|r| V2Engine::fresh_with_policy(Rank(r as u32), n as u32, policy))
                .collect(),
            scripts,
            pc: vec![0; n],
            waiting: vec![false; n],
            sends_done: vec![0; n],
            received: vec![Vec::new(); n],
            flights: VecDeque::new(),
            el: vec![Vec::new(); n],
            snapshots: vec![None; n],
            policy,
        }
    }

    fn n(&self) -> usize {
        self.scripts.len()
    }

    /// Route one engine's outputs into flights / the EL / the app.
    fn route_outputs(&mut self, r: usize) {
        for out in self.engines[r].drain_outputs() {
            match out {
                Output::Transmit { to, msg } => {
                    self.flights.push_back(Flight::Peer {
                        from: Rank(r as u32),
                        to,
                        msg,
                    });
                }
                Output::LogEvents(EventBatch { owner, events }) => {
                    let store = &mut self.el[owner.idx()];
                    let mut up_to = 0;
                    for e in events {
                        if store
                            .last()
                            .map(|l| l.receiver_clock < e.receiver_clock)
                            .unwrap_or(true)
                        {
                            store.push(e);
                        }
                        up_to = store.last().map(|l| l.receiver_clock).unwrap_or(0);
                    }
                    self.flights.push_back(Flight::ElAck { to: owner, up_to });
                }
                Output::Deliver { from, payload } => {
                    assert!(self.waiting[r], "unsolicited delivery at rank {r}");
                    self.waiting[r] = false;
                    self.received[r].push((from.0, payload));
                    self.pc[r] += 1;
                }
                Output::ProbeAnswer(_) => unreachable!("no probes in these scripts"),
                Output::ElTruncate { up_to } => {
                    self.el[r].retain(|e| e.receiver_clock > up_to);
                }
                Output::ReplayComplete => {}
            }
        }
    }

    /// Run every rank's program greedily until each is blocked on a recv
    /// or finished (app steps are deterministic; the nondeterminism under
    /// exploration is delivery order).
    fn run_apps(&mut self) {
        loop {
            let mut progressed = false;
            for r in 0..self.n() {
                if self.waiting[r] {
                    continue;
                }
                let Some(&op) = self.scripts[r].get(self.pc[r]) else {
                    continue;
                };
                match op {
                    Op::Send(dst) => {
                        let p = payload_for(r as u32, self.sends_done[r]);
                        self.sends_done[r] += 1;
                        self.pc[r] += 1;
                        self.engines[r]
                            .handle(Input::AppSend {
                                dst: Rank(dst),
                                payload: p,
                            })
                            .unwrap();
                    }
                    Op::Recv => {
                        self.waiting[r] = true;
                        self.engines[r].handle(Input::AppRecv).unwrap();
                    }
                }
                self.route_outputs(r);
                progressed = true;
            }
            if !progressed {
                return;
            }
        }
    }

    /// Deliver flight `i` (must respect per-channel FIFO: the caller only
    /// picks the *first* flight of each channel).
    fn deliver(&mut self, i: usize) {
        let f = self.flights.remove(i).expect("index valid");
        match f {
            Flight::Peer { from, to, msg } => {
                self.engines[to.idx()]
                    .handle(Input::Peer { from, msg })
                    .expect("no divergence");
                self.route_outputs(to.idx());
            }
            Flight::ElAck { to, up_to } => {
                self.engines[to.idx()]
                    .handle(Input::ElAck { up_to })
                    .unwrap();
                self.route_outputs(to.idx());
            }
        }
        self.run_apps();
    }

    /// The indices of flights that are deliverable next: the first flight
    /// of every distinct (kind, endpoint) channel.
    fn frontier(&self) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (i, f) in self.flights.iter().enumerate() {
            let key = match f {
                Flight::Peer { from, to, .. } => (0u8, from.0, to.0),
                Flight::ElAck { to, .. } => (1u8, 0, to.0),
            };
            if seen.insert(key) {
                out.push(i);
            }
        }
        out
    }

    fn done(&self) -> bool {
        (0..self.n()).all(|r| self.pc[r] >= self.scripts[r].len() && !self.waiting[r])
    }

    /// Crash rank `v`: drop its engine/app state and every flight touching
    /// it (channels emptied), restart (from snapshot if one was taken),
    /// download its EL events, and begin recovery.
    fn crash_and_restart(&mut self, v: usize) {
        self.flights.retain(|f| match f {
            Flight::Peer { from, to, .. } => from.idx() != v && to.idx() != v,
            Flight::ElAck { to, .. } => to.idx() != v,
        });
        let (mut engine, pc, sends, received) = match self.snapshots[v].clone() {
            Some((snap, pc, sends, received)) => (V2Engine::restore(snap), pc, sends, received),
            None => (
                V2Engine::fresh(Rank(v as u32), self.n() as u32),
                0,
                0,
                Vec::new(),
            ),
        };
        engine.set_batch_policy(self.policy);
        let events: Vec<ReceptionEvent> = self.el[v]
            .iter()
            .copied()
            .filter(|e| e.receiver_clock > engine.clock())
            .collect();
        engine.begin_recovery(events);
        self.engines[v] = engine;
        self.pc[v] = pc;
        self.sends_done[v] = sends;
        self.received[v] = received;
        self.waiting[v] = false;
        self.route_outputs(v);
        self.run_apps();
    }

    /// Take a checkpoint of rank `v` now, if the engine is quiescent.
    fn try_checkpoint(&mut self, v: usize) -> bool {
        self.engines[v].handle(Input::CheckpointOrder).unwrap();
        if self.engines[v].try_arm_checkpoint().is_none() {
            return false;
        }
        let snap = self.engines[v].snapshot();
        self.snapshots[v] = Some((
            snap,
            self.pc[v],
            self.sends_done[v],
            self.received[v].clone(),
        ));
        self.engines[v].handle(Input::CheckpointStored).unwrap();
        self.route_outputs(v);
        true
    }

    /// Drain all remaining work deterministically (FIFO deliveries).
    fn run_to_completion(&mut self, budget: &mut u64) {
        self.run_apps();
        while !self.done() {
            *budget -= 1;
            assert!(*budget > 0, "exploration wedged");
            assert!(
                !self.flights.is_empty(),
                "deadlock: nothing in flight but not done"
            );
            self.deliver(0);
        }
    }

    fn check_equivalence(&self, expected: &[Vec<Vec<Payload>>]) {
        for (r, got) in self.received.iter().enumerate() {
            let mut per_src: Vec<Vec<Payload>> = vec![Vec::new(); self.n()];
            for (from, p) in got {
                per_src[*from as usize].push(p.clone());
            }
            for s in 0..self.n() {
                assert_eq!(
                    per_src[s], expected[r][s],
                    "rank {r}: messages from {s} diverge from the fault-free run"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

struct Explorer {
    expected: Vec<Vec<Vec<Payload>>>,
    states_visited: u64,
    crash_runs: u64,
    max_states: u64,
}

impl Explorer {
    fn explore(&mut self, w: World, crashes_left: u32, ckpts_left: u32) {
        self.states_visited += 1;
        assert!(
            self.states_visited < self.max_states,
            "state space larger than expected ({} states)",
            self.states_visited
        );

        // Branch: crash any rank here, then run deterministically.
        if crashes_left > 0 {
            for v in 0..w.n() {
                let mut fw = w.clone();
                fw.crash_and_restart(v);
                let mut budget = 100_000u64;
                fw.run_to_completion(&mut budget);
                fw.check_equivalence(&self.expected);
                self.crash_runs += 1;

                // And crash once more during/after the first recovery,
                // deterministically (second-order faults).
                if crashes_left > 1 {
                    for v2 in 0..w.n() {
                        let mut fw2 = w.clone();
                        fw2.crash_and_restart(v);
                        fw2.crash_and_restart(v2);
                        let mut budget = 100_000u64;
                        fw2.run_to_completion(&mut budget);
                        fw2.check_equivalence(&self.expected);
                        self.crash_runs += 1;
                    }
                }
            }
        }

        // Branch: checkpoint any rank here (changes later recoveries).
        if ckpts_left > 0 && crashes_left > 0 {
            for v in 0..w.n() {
                let mut cw = w.clone();
                if cw.try_checkpoint(v) {
                    self.explore(cw, crashes_left, ckpts_left - 1);
                }
            }
        }

        if w.done() {
            w.check_equivalence(&self.expected);
            return;
        }
        let frontier = w.frontier();
        assert!(
            !frontier.is_empty(),
            "deadlock: not done and nothing deliverable"
        );
        for i in frontier {
            let mut next = w.clone();
            next.deliver(i);
            self.explore(next, crashes_left, ckpts_left);
        }
    }
}

fn run_exploration(scripts: Vec<Vec<Op>>, crashes: u32, ckpts: u32, max_states: u64) -> (u64, u64) {
    // The eager policy maximizes in-flight EL traffic (one LogEvents/ElAck
    // pair per delivery) and hence the interleaving space explored.
    run_exploration_with(scripts, BatchPolicy::Immediate, crashes, ckpts, max_states)
}

fn run_exploration_with(
    scripts: Vec<Vec<Op>>,
    policy: BatchPolicy,
    crashes: u32,
    ckpts: u32,
    max_states: u64,
) -> (u64, u64) {
    let expected = expected_per_source(&scripts);
    let mut world = World::new(scripts, policy);
    world.run_apps();
    let mut ex = Explorer {
        expected,
        states_visited: 0,
        crash_runs: 0,
        max_states,
    };
    ex.explore(world, crashes, ckpts);
    (ex.states_visited, ex.crash_runs)
}

// ---------------------------------------------------------------------
// The test matrix
// ---------------------------------------------------------------------

#[test]
fn exhaustive_pingpong_with_crashes_everywhere() {
    // A: send, recv, send; B: recv, send, recv — every interleaving of
    // deliveries and acks, with a crash of either rank at every state.
    let scripts = vec![
        vec![Op::Send(1), Op::Recv, Op::Send(1)],
        vec![Op::Recv, Op::Send(0), Op::Recv],
    ];
    let (states, crash_runs) = run_exploration(scripts, 1, 0, 2_000_000);
    assert!(states >= 5, "exploration trivially small ({states})");
    assert!(crash_runs >= 10, "too few crash branches ({crash_runs})");
}

#[test]
fn exhaustive_pingpong_with_double_crashes() {
    let scripts = vec![vec![Op::Send(1), Op::Recv], vec![Op::Recv, Op::Send(0)]];
    let (_states, crash_runs) = run_exploration(scripts, 2, 0, 2_000_000);
    assert!(
        crash_runs >= 20,
        "double-crash coverage too small ({crash_runs})"
    );
}

#[test]
fn exhaustive_with_checkpoints_at_every_state() {
    let scripts = vec![
        vec![Op::Send(1), Op::Recv, Op::Send(1)],
        vec![Op::Recv, Op::Send(0), Op::Recv],
    ];
    let (states, crash_runs) = run_exploration(scripts, 1, 1, 4_000_000);
    assert!(states >= 10, "{states}");
    assert!(crash_runs >= 20, "{crash_runs}");
}

#[test]
fn exhaustive_three_ranks_fanin() {
    // Two senders racing into one receiver (nondeterministic reception
    // order), crashes everywhere.
    let scripts = vec![
        vec![Op::Send(2), Op::Send(2)],
        vec![Op::Send(2), Op::Send(2)],
        vec![
            Op::Recv,
            Op::Recv,
            Op::Recv,
            Op::Recv,
            Op::Send(0),
            Op::Send(1),
        ],
    ];
    let mut scripts = scripts;
    scripts[0].push(Op::Recv);
    scripts[1].push(Op::Recv);
    let (states, crash_runs) = run_exploration(scripts, 1, 0, 8_000_000);
    assert!(states > 100);
    assert!(crash_runs > 100);
}

#[test]
fn exhaustive_lazy_batching_pingpong_with_crashes() {
    // Same matrix as the eager ping-pong, under a lazy batch policy small
    // enough to exercise both the threshold flush and the gated-send
    // flush. Correctness (delivery equivalence across all crash branches)
    // must be identical; only the state count shrinks — batching removes
    // per-delivery EL round-trips, which is the point.
    let scripts = vec![
        vec![Op::Send(1), Op::Recv, Op::Send(1)],
        vec![Op::Recv, Op::Send(0), Op::Recv],
    ];
    let (states, crash_runs) = run_exploration_with(
        scripts,
        BatchPolicy::Lazy { max_events: 2 },
        1,
        0,
        2_000_000,
    );
    assert!(states >= 5, "exploration trivially small ({states})");
    assert!(crash_runs >= 10, "too few crash branches ({crash_runs})");
}

#[test]
fn exhaustive_lazy_batching_fanin_with_crashes() {
    // Fan-in under an effectively unbounded batch: events only flush when
    // the receiver's own sends queue behind the gate. Crashes at every
    // state verify that losing a pending (unflushed) batch never loses a
    // delivery another rank depends on.
    let scripts = vec![
        vec![Op::Send(2), Op::Send(2), Op::Recv],
        vec![Op::Send(2), Op::Send(2), Op::Recv],
        vec![
            Op::Recv,
            Op::Recv,
            Op::Recv,
            Op::Recv,
            Op::Send(0),
            Op::Send(1),
        ],
    ];
    let (states, crash_runs) = run_exploration_with(
        scripts,
        BatchPolicy::Lazy { max_events: 64 },
        1,
        0,
        8_000_000,
    );
    assert!(states >= 20, "{states}");
    assert!(crash_runs >= 50, "{crash_runs}");
}

#[test]
fn exhaustive_relay_chain() {
    // A -> B -> C relay: B's emission causally depends on its reception —
    // the pessimism gate's canonical scenario.
    let scripts = vec![
        vec![Op::Send(1)],
        vec![Op::Recv, Op::Send(2)],
        vec![Op::Recv, Op::Send(0)],
    ];
    let mut scripts = scripts;
    scripts[0].push(Op::Recv);
    let (states, crash_runs) = run_exploration(scripts, 2, 0, 8_000_000);
    assert!(states >= 5, "{states}");
    assert!(crash_runs >= 30, "{crash_runs}");
}
