//! The recovery watermark vectors `HR_p[q]` and `HS_p[q]` of Appendix A and
//! the logic of the `on Restart` / `RESTART1` / `RESTART2` rules.
//!
//! * `HR_p[q]` — "date of last received event from process q (in q's
//!   clock)": the highest *sender* clock among messages from `q` that `p`
//!   has delivered. Drives duplicate suppression on the receive path, the
//!   content of `RESTART1`, and the garbage-collection watermark attached
//!   to checkpoint notifications.
//! * `HS_p[q]` — "date of last sent event to process q (in p's clock)":
//!   the highest of `p`'s own clocks whose message to `q` is known
//!   transmitted (or known *received* after a restart handshake). A
//!   (re-executed) send with `h <= HS_p[q]` is appended to the sender log
//!   but **not** transmitted (Lemma 1 + duplicate suppression).

use crate::ids::Rank;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Both per-peer watermark vectors of one process. Missing entries are 0
/// (nothing received/sent yet), matching the `init: 0` of the protocol.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watermarks {
    hr: BTreeMap<Rank, u64>,
    hs: BTreeMap<Rank, u64>,
}

impl Watermarks {
    /// Fresh vectors (all zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// `HR_p[q]`.
    #[inline]
    pub fn hr(&self, q: Rank) -> u64 {
        self.hr.get(&q).copied().unwrap_or(0)
    }

    /// `HS_p[q]`.
    #[inline]
    pub fn hs(&self, q: Rank) -> u64 {
        self.hs.get(&q).copied().unwrap_or(0)
    }

    /// A message from `q` with sender clock `h` was delivered; record it.
    /// Returns `false` (and changes nothing) when `h` is not newer —
    /// i.e. the message is a duplicate the caller must discard.
    pub fn on_delivery_from(&mut self, q: Rank, h: u64) -> bool {
        let e = self.hr.entry(q).or_insert(0);
        if h > *e {
            *e = h;
            true
        } else {
            false
        }
    }

    /// Would a message from `q` at sender clock `h` be a duplicate?
    #[inline]
    pub fn is_duplicate_from(&self, q: Rank, h: u64) -> bool {
        h <= self.hr(q)
    }

    /// A message to `q` emitted at our clock `h` was transmitted.
    pub fn on_transmit_to(&mut self, q: Rank, h: u64) {
        let e = self.hs.entry(q).or_insert(0);
        if h > *e {
            *e = h;
        }
    }

    /// Should an emission to `q` at our clock `h` actually hit the wire?
    /// (`if (h > HS_p[q]) SEND(...)` in the `RESTART` rules; during normal
    /// operation `h` always exceeds `HS`.)
    #[inline]
    pub fn should_transmit_to(&self, q: Rank, h: u64) -> bool {
        h > self.hs(q)
    }

    /// Handle the watermark carried by `RESTART1`/`RESTART2` from `q`:
    /// set `HS_p[q] = last_received` exactly, as the Appendix-A rules do
    /// (`HS_p[q] = HP`). Overwriting — including *lowering* — is required:
    /// `q` may have lost messages we transmitted (a crash empties the
    /// channels, and a rolled-back `q` forgets post-checkpoint deliveries),
    /// so re-sends beyond `last_received` must not be suppressed. Lowering
    /// can only cause duplicate re-sends, which the receiver independently
    /// discards via its `HR` watermark.
    pub fn set_hs_from_restart(&mut self, q: Rank, last_received: u64) {
        self.hs.insert(q, last_received);
    }

    /// A transmission to `q` at our clock `h` was dropped on the floor:
    /// the peer's incarnation died and the message vanished with its
    /// mailbox instead of reaching the network. `HS` must stop claiming
    /// it was transmitted — a checkpoint taken with the inflated mark
    /// would suppress, across our own later restart, the very re-sends
    /// that fill the hole, and the receiver would deliver a gapped
    /// (FIFO-violating) sequence. Roll `HS_p[q]` back below `h`;
    /// under-counting only costs duplicate re-sends, which the receiver
    /// independently discards via its `HR` watermark.
    pub fn rollback_hs_below(&mut self, q: Rank, h: u64) {
        if let Some(e) = self.hs.get_mut(&q) {
            if *e >= h {
                *e = h.saturating_sub(1);
            }
        }
    }

    /// Iterate the non-zero `HR` entries (for checkpoint notifications).
    pub fn hr_entries(&self) -> impl Iterator<Item = (Rank, u64)> + '_ {
        self.hr.iter().map(|(&r, &v)| (r, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let w = Watermarks::new();
        assert_eq!(w.hr(Rank(3)), 0);
        assert_eq!(w.hs(Rank(3)), 0);
        assert!(!w.is_duplicate_from(Rank(3), 1));
        assert!(w.should_transmit_to(Rank(3), 1));
    }

    #[test]
    fn delivery_updates_hr_and_rejects_duplicates() {
        let mut w = Watermarks::new();
        assert!(w.on_delivery_from(Rank(1), 5));
        assert_eq!(w.hr(Rank(1)), 5);
        assert!(w.is_duplicate_from(Rank(1), 5));
        assert!(w.is_duplicate_from(Rank(1), 3));
        assert!(!w.on_delivery_from(Rank(1), 5));
        assert!(w.on_delivery_from(Rank(1), 6));
    }

    #[test]
    fn transmit_watermark_monotonic() {
        let mut w = Watermarks::new();
        w.on_transmit_to(Rank(2), 10);
        w.on_transmit_to(Rank(2), 7); // out of order update ignored
        assert_eq!(w.hs(Rank(2)), 10);
        assert!(!w.should_transmit_to(Rank(2), 9));
        assert!(w.should_transmit_to(Rank(2), 11));
    }

    #[test]
    fn restart_watermark_overwrites_even_lower() {
        let mut w = Watermarks::new();
        w.on_transmit_to(Rank(1), 20);
        // The rolled-back peer only provably received up to 5: messages
        // 6..=20 may have been lost in flight and must be re-sendable.
        w.set_hs_from_restart(Rank(1), 5);
        assert_eq!(w.hs(Rank(1)), 5);
        assert!(w.should_transmit_to(Rank(1), 6));
        // A peer that advanced past our knowledge raises HS.
        w.set_hs_from_restart(Rank(1), 33);
        assert!(!w.should_transmit_to(Rank(1), 33));
    }

    #[test]
    fn hr_entries_roundtrip_through_snapshot() {
        let mut w = Watermarks::new();
        w.on_delivery_from(Rank(0), 3);
        w.on_delivery_from(Rank(2), 8);
        let enc = bincode::serialize(&w).unwrap();
        let dec: Watermarks = bincode::deserialize(&enc).unwrap();
        let entries: Vec<_> = dec.hr_entries().collect();
        assert_eq!(entries, vec![(Rank(0), 3), (Rank(2), 8)]);
    }
}
