//! The re-execution plan: forcing logged receptions back in their original
//! order (Fig. 2 of the paper, phases A–C).
//!
//! After a rollback, the daemon downloads its reception events from the
//! event logger (phase A) and asks the peers to re-send old messages
//! (phase B). [`ReplayPlan`] then decides, for every incoming message and
//! every application probe/receive, what the original execution did
//! (phase C): logged receptions are delivered in logged order, duplicates
//! are discarded, unlogged ("future") arrivals are parked until the replay
//! completes, and unsuccessful probe counts are reproduced exactly.

use crate::event::ReceptionEvent;
use crate::ids::MsgId;
use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// How an incoming message relates to the replay plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Offer {
    /// The message is one of the logged receptions still to be replayed;
    /// it has been stored and will be delivered at its logged position.
    Stored,
    /// The message is not part of the logged history: it was in transit or
    /// re-sent beyond the crash point. It must be parked and delivered
    /// after the replay completes, as a fresh nondeterministic reception.
    Future,
}

/// Outcome of an application probe during replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// Answer the probe `false` (the original probe failed).
    ReplayNo,
    /// Answer the probe `true` (the original probe succeeded and the
    /// message to deliver is available).
    ReplayYes,
    /// The original probe succeeded but the re-sent message has not arrived
    /// yet: hold the answer until it does.
    Defer,
}

/// Errors surfaced by the replay machinery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The re-executed process delivered at a clock different from the
    /// logged one — the piecewise-determinism assumption was violated by
    /// the application (a nondeterministic step that was not a reception).
    ClockDivergence {
        /// Clock the logged event expects.
        expected: u64,
        /// Clock the re-execution produced.
        actual: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ClockDivergence { expected, actual } => write!(
                f,
                "replay divergence: logged reception at clock {expected} but \
                 re-execution reached clock {actual}; the application violates \
                 piecewise determinism"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The ordered list of events to replay plus arrival bookkeeping.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReplayPlan {
    /// Logged events not yet replayed, in receiver-clock order.
    events: VecDeque<ReceptionEvent>,
    /// Re-sent payloads that arrived before their logged position.
    pending: HashMap<MsgId, Payload>,
    /// Arrivals beyond the logged history, in arrival order, delivered
    /// fresh once the replay is complete.
    future: VecDeque<(MsgId, Payload)>,
    /// Every id ever offered, so duplicate re-sends (two peers answering
    /// two RESTART rounds) don't park two copies in `future`.
    offered: std::collections::HashSet<MsgId>,
    /// Failed probes already answered for the head event.
    probes_answered: u32,
}

impl ReplayPlan {
    /// Build a plan from the downloaded events. Events are sorted by
    /// receiver clock; duplicates (same receiver clock) are dropped.
    pub fn new(mut events: Vec<ReceptionEvent>) -> Self {
        events.sort_by_key(|e| e.receiver_clock);
        events.dedup_by_key(|e| e.receiver_clock);
        ReplayPlan {
            events: events.into(),
            pending: HashMap::new(),
            future: VecDeque::new(),
            offered: std::collections::HashSet::new(),
            probes_answered: 0,
        }
    }

    /// An empty plan (fresh start with no logged history).
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when every logged event has been replayed.
    pub fn is_done(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events still to replay.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// The event that must be delivered next, if any.
    pub fn head(&self) -> Option<&ReceptionEvent> {
        self.events.front()
    }

    /// Classify and store an incoming message. The caller must have already
    /// discarded `HR`-duplicates (messages at or below the delivery
    /// watermark).
    pub fn offer(&mut self, id: MsgId, payload: Payload) -> Offer {
        if self.events.iter().any(|e| e.msg_id() == id) {
            // Re-offering an id overwrites the identical pending copy.
            self.offered.insert(id);
            self.pending.insert(id, payload);
            Offer::Stored
        } else {
            if self.offered.insert(id) {
                self.future.push_back((id, payload));
            }
            Offer::Future
        }
    }

    /// Is the head event deliverable right now?
    pub fn head_available(&self) -> bool {
        self.head()
            .is_some_and(|e| self.pending.contains_key(&e.msg_id()))
    }

    /// Answer an application probe during replay (§4.5 probe counting).
    pub fn probe(&mut self) -> ProbeVerdict {
        let Some(head) = self.events.front() else {
            // Plan exhausted: the caller should have left replay mode.
            return ProbeVerdict::Defer;
        };
        if self.probes_answered < head.probes {
            self.probes_answered += 1;
            ProbeVerdict::ReplayNo
        } else if self.pending.contains_key(&head.msg_id()) {
            ProbeVerdict::ReplayYes
        } else {
            ProbeVerdict::Defer
        }
    }

    /// Attempt to deliver the head event. `current_clock` is the process
    /// clock *before* the delivery tick; the logged event must sit at
    /// exactly `current_clock + 1` or the re-execution has diverged.
    ///
    /// On success returns the event and its payload, and the caller must
    /// advance its clock to `event.receiver_clock`.
    pub fn try_deliver(
        &mut self,
        current_clock: u64,
    ) -> Result<Option<(ReceptionEvent, Payload)>, ReplayError> {
        let Some(head) = self.events.front() else {
            return Ok(None);
        };
        let Some(payload) = self.pending.get(&head.msg_id()) else {
            return Ok(None);
        };
        let expected = head.receiver_clock;
        if expected != current_clock + 1 {
            return Err(ReplayError::ClockDivergence {
                expected,
                actual: current_clock + 1,
            });
        }
        let payload = payload.clone();
        let head = self.events.pop_front().expect("head checked above");
        self.pending.remove(&head.msg_id());
        self.probes_answered = 0;
        Ok(Some((head, payload)))
    }

    /// Drain the parked post-history arrivals (to feed the normal receive
    /// buffer once replay completes). Pending-but-undelivered entries would
    /// indicate a bug (a stored message whose event was never replayed), so
    /// this asserts the plan is done and pending is empty.
    pub fn into_future_arrivals(self) -> Vec<(MsgId, Payload)> {
        debug_assert!(self.events.is_empty(), "draining an unfinished replay plan");
        debug_assert!(self.pending.is_empty(), "stored payloads never delivered");
        self.future.into()
    }

    /// Peek at how many future arrivals are parked.
    pub fn future_len(&self) -> usize {
        self.future.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Rank;

    fn ev(s: u32, sc: u64, rc: u64, probes: u32) -> ReceptionEvent {
        ReceptionEvent {
            sender: Rank(s),
            sender_clock: sc,
            receiver_clock: rc,
            probes,
        }
    }

    fn pl(n: u8) -> Payload {
        Payload::from_vec(vec![n])
    }

    #[test]
    fn orders_and_dedups_downloaded_events() {
        let plan = ReplayPlan::new(vec![ev(1, 5, 9, 0), ev(2, 1, 3, 0), ev(2, 1, 3, 0)]);
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.head().unwrap().receiver_clock, 3);
    }

    #[test]
    fn delivers_in_logged_order_regardless_of_arrival() {
        let mut plan = ReplayPlan::new(vec![ev(1, 1, 3, 0), ev(2, 1, 4, 0)]);
        // Second message arrives first.
        assert_eq!(plan.offer(MsgId::new(Rank(2), 1), pl(2)), Offer::Stored);
        assert!(
            plan.try_deliver(2).unwrap().is_none(),
            "head not yet available"
        );
        assert_eq!(plan.offer(MsgId::new(Rank(1), 1), pl(1)), Offer::Stored);
        let (e, p) = plan.try_deliver(2).unwrap().unwrap();
        assert_eq!(e.receiver_clock, 3);
        assert_eq!(p, pl(1));
        let (e, p) = plan.try_deliver(3).unwrap().unwrap();
        assert_eq!(e.receiver_clock, 4);
        assert_eq!(p, pl(2));
        assert!(plan.is_done());
    }

    #[test]
    fn unlogged_arrivals_are_future() {
        let mut plan = ReplayPlan::new(vec![ev(1, 1, 3, 0)]);
        assert_eq!(plan.offer(MsgId::new(Rank(2), 9), pl(9)), Offer::Future);
        assert_eq!(plan.offer(MsgId::new(Rank(1), 1), pl(1)), Offer::Stored);
        plan.try_deliver(2).unwrap().unwrap();
        let fut = plan.into_future_arrivals();
        assert_eq!(fut, vec![(MsgId::new(Rank(2), 9), pl(9))]);
    }

    #[test]
    fn probe_counts_replay_exactly() {
        // Original run: two failed probes, then reception.
        let mut plan = ReplayPlan::new(vec![ev(1, 1, 4, 2)]);
        assert_eq!(plan.probe(), ProbeVerdict::ReplayNo);
        assert_eq!(plan.probe(), ProbeVerdict::ReplayNo);
        // Budget exhausted but message not here: hold the answer.
        assert_eq!(plan.probe(), ProbeVerdict::Defer);
        plan.offer(MsgId::new(Rank(1), 1), pl(1));
        assert_eq!(plan.probe(), ProbeVerdict::ReplayYes);
        plan.try_deliver(3).unwrap().unwrap();
        assert!(plan.is_done());
    }

    #[test]
    fn clock_divergence_detected() {
        let mut plan = ReplayPlan::new(vec![ev(1, 1, 10, 0)]);
        plan.offer(MsgId::new(Rank(1), 1), pl(1));
        let err = plan.try_deliver(5).unwrap_err();
        assert_eq!(
            err,
            ReplayError::ClockDivergence {
                expected: 10,
                actual: 6
            }
        );
    }

    #[test]
    fn duplicate_future_offers_parked_once() {
        let mut plan = ReplayPlan::new(vec![]);
        let id = MsgId::new(Rank(2), 9);
        assert_eq!(plan.offer(id, pl(9)), Offer::Future);
        assert_eq!(plan.offer(id, pl(9)), Offer::Future);
        assert_eq!(plan.future_len(), 1);
    }

    #[test]
    fn empty_plan_is_done() {
        let plan = ReplayPlan::empty();
        assert!(plan.is_done());
        assert_eq!(plan.remaining(), 0);
    }
}
