//! The WAITLOGGED gate — what makes the protocol *pessimistic*.
//!
//! §4.1: "the process p is not allowed to send a message (and thus to have
//! an effect on the system) before being ensured that the message is
//! correctly logged". Concretely (§4.5): "the communication daemon does not
//! send messages before the event logger has acknowledged the reception of
//! the preceding reception events."
//!
//! [`PessimismGate`] tracks the highest reception clock scheduled for
//! logging and the highest clock acknowledged by the event logger. Outgoing
//! transmissions queue behind the gate whenever `acked < scheduled`.

use serde::{Deserialize, Serialize};

/// Tracks outstanding (logged-but-unacked) reception events.
///
/// Clock values are the receiver clocks of logged events, which are
/// strictly increasing, so a single pair of watermarks suffices.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PessimismGate {
    /// Highest receiver clock handed to the EL client for logging.
    scheduled: u64,
    /// Highest receiver clock acknowledged durable by the EL.
    acked: u64,
}

impl PessimismGate {
    /// A gate with nothing outstanding (open).
    pub fn new() -> Self {
        Self::default()
    }

    /// An event at `receiver_clock` was scheduled for logging (`LOG()`).
    pub fn on_scheduled(&mut self, receiver_clock: u64) {
        debug_assert!(
            receiver_clock > self.scheduled,
            "reception clocks must be scheduled in increasing order \
             ({} after {})",
            receiver_clock,
            self.scheduled
        );
        self.scheduled = receiver_clock;
    }

    /// The EL acknowledged durability of all events up to `up_to`.
    /// Returns `true` if the gate transitioned from closed to open.
    pub fn on_ack(&mut self, up_to: u64) -> bool {
        let was_closed = !self.is_open();
        if up_to > self.acked {
            self.acked = up_to;
        }
        was_closed && self.is_open()
    }

    /// `WAITLOGGED()` has returned: every scheduled log is durable.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.acked >= self.scheduled
    }

    /// Number of clock steps still awaiting acknowledgement (diagnostic).
    pub fn outstanding(&self) -> u64 {
        self.scheduled.saturating_sub(self.acked)
    }

    /// Highest scheduled clock (what the EL must eventually ack).
    pub fn scheduled_clock(&self) -> u64 {
        self.scheduled
    }

    /// Highest acked clock.
    pub fn acked_clock(&self) -> u64 {
        self.acked
    }

    /// Reset after a rollback: the restored state has no outstanding logs
    /// (everything it knew of was either durable — it will be replayed — or
    /// forgotten with the crash).
    pub fn reset(&mut self) {
        self.scheduled = 0;
        self.acked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_open() {
        assert!(PessimismGate::new().is_open());
    }

    #[test]
    fn closes_on_schedule_opens_on_ack() {
        let mut g = PessimismGate::new();
        g.on_scheduled(3);
        assert!(!g.is_open());
        assert_eq!(g.outstanding(), 3);
        assert!(!g.on_ack(2)); // partial ack: still closed
        assert!(!g.is_open());
        assert!(g.on_ack(3)); // transition closed -> open reported
        assert!(g.is_open());
        assert!(!g.on_ack(3)); // idempotent, no transition
    }

    #[test]
    fn multiple_scheduled_before_ack() {
        let mut g = PessimismGate::new();
        g.on_scheduled(1);
        g.on_scheduled(2);
        g.on_scheduled(5);
        assert!(!g.on_ack(4));
        assert!(g.on_ack(5));
    }

    #[test]
    fn stale_acks_ignored() {
        let mut g = PessimismGate::new();
        g.on_scheduled(10);
        g.on_ack(10);
        g.on_ack(4); // stale
        assert_eq!(g.acked_clock(), 10);
        assert!(g.is_open());
    }

    #[test]
    #[should_panic]
    fn schedule_must_increase() {
        let mut g = PessimismGate::new();
        g.on_scheduled(5);
        g.on_scheduled(5);
    }

    #[test]
    fn reset_reopens() {
        let mut g = PessimismGate::new();
        g.on_scheduled(9);
        g.reset();
        assert!(g.is_open());
        assert_eq!(g.outstanding(), 0);
    }
}
