//! Message payload wrapper.
//!
//! Payloads are reference-counted byte buffers ([`bytes::Bytes`]) so the
//! sender-based log can keep a copy of every emitted message (§4.5) without
//! duplicating the bytes in memory, while still serializing transparently
//! into checkpoint images.

use bytes::Bytes;
use serde::de::{self, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::ops::Deref;

/// An immutable, cheaply-cloneable message payload.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Payload(Bytes);

impl Payload {
    /// An empty payload (e.g. a 0-byte ping-pong message).
    pub fn empty() -> Self {
        Payload(Bytes::new())
    }

    /// Payload from owned bytes.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Payload(Bytes::from(v))
    }

    /// Payload of `len` copies of `byte` — handy for benchmarks.
    pub fn filled(byte: u8, len: usize) -> Self {
        Payload(Bytes::from(vec![byte; len]))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload carries no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Access the inner [`Bytes`].
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(Bytes::copy_from_slice(v))
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload(b)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload[{}B]", self.len())
    }
}

impl Serialize for Payload {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.0)
    }
}

struct PayloadVisitor;

impl<'de> Visitor<'de> for PayloadVisitor {
    type Value = Payload;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a byte buffer")
    }

    fn visit_bytes<E: de::Error>(self, v: &[u8]) -> Result<Payload, E> {
        Ok(Payload::from(v))
    }

    fn visit_byte_buf<E: de::Error>(self, v: Vec<u8>) -> Result<Payload, E> {
        Ok(Payload::from_vec(v))
    }

    fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Payload, A::Error> {
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(b) = seq.next_element::<u8>()? {
            out.push(b);
        }
        Ok(Payload::from_vec(out))
    }
}

impl<'de> Deserialize<'de> for Payload {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Payload, D::Error> {
        deserializer.deserialize_byte_buf(PayloadVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Payload::empty().is_empty());
        let p = Payload::filled(0xAB, 16);
        assert_eq!(p.len(), 16);
        assert!(p.as_slice().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn clone_shares_buffer() {
        let p = Payload::filled(1, 1 << 20);
        let q = p.clone();
        // Bytes clones share the allocation: identical pointers.
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
    }

    #[test]
    fn serde_roundtrip_bincode() {
        let p = Payload::from_vec(vec![1, 2, 3, 4, 5]);
        let enc = bincode::serialize(&p).unwrap();
        let dec: Payload = bincode::deserialize(&enc).unwrap();
        assert_eq!(p, dec);
    }

    #[test]
    fn deref_as_slice() {
        let p = Payload::from_vec(vec![9, 8, 7]);
        assert_eq!(&p[..], &[9, 8, 7]);
    }
}
