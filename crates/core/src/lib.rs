//! # mvr-core — the MPICH-V2 protocol
//!
//! Sans-IO implementation of the pessimistic sender-based message-logging
//! protocol of *"MPICH-V2: a Fault Tolerant MPI for Volatile Nodes based on
//! Pessimistic Sender Based Message Logging"* (SC 2003), plus the two
//! comparison protocols of its evaluation (MPICH-P4 and MPICH-V1).
//!
//! The crate contains **no threads, sockets or clocks** — only state
//! machines and data structures:
//!
//! * [`V2Engine`] — the protocol of Appendix A: logical clocks, the
//!   sender-based payload log (`SAVED`), reception-event logging with the
//!   WAITLOGGED pessimism gate, the `RESTART1`/`RESTART2` recovery
//!   handshake, ordered replay, probe-count reproduction, checkpointing and
//!   garbage collection.
//! * [`baseline::p4::P4Engine`] — direct transmission, no fault tolerance.
//! * [`baseline::v1`] — Channel-Memory logging (engine + repository).
//!
//! The real multithreaded runtime (`mvr-runtime`) and the discrete-event
//! performance simulator (`mvr-simnet`) both build on this crate.
//!
//! ## Quick tour
//!
//! ```
//! use mvr_core::{V2Engine, Input, Output, Rank, Payload};
//!
//! let mut sender = V2Engine::fresh(Rank(0), 2);
//! let mut receiver = V2Engine::fresh(Rank(1), 2);
//!
//! // Rank 0 sends; the engine emits a transmission command and keeps a
//! // copy in its sender-based log.
//! sender.handle(Input::AppSend { dst: Rank(1), payload: Payload::from_vec(vec![42]) }).unwrap();
//! let outs = sender.drain_outputs();
//! assert!(matches!(outs[0], Output::Transmit { .. }));
//! assert_eq!(sender.logged_bytes(), 1);
//!
//! // Rank 1 receives: the delivery produces a 4-field reception event for
//! // the event logger, and the pessimism gate closes until it is acked.
//! receiver.handle(Input::AppRecv).unwrap();
//! if let Output::Transmit { msg, .. } = &outs[0] {
//!     receiver.handle(Input::Peer { from: Rank(0), msg: msg.clone() }).unwrap();
//! }
//! assert!(!receiver.gate_open());
//! receiver.handle(Input::ElAck { up_to: 1 }).unwrap();
//! assert!(receiver.gate_open());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod clock;
pub mod engine;
pub mod envelope;
pub mod event;
pub mod ids;
pub mod metrics;
pub mod payload;
pub mod pessimism;
pub mod recovery;
pub mod replay;
pub mod sender_log;
pub mod snapshot;
pub mod spec;

pub use clock::LogicalClock;
pub use engine::{Input, Output, V2Engine};
pub use envelope::{
    CkptReply, CkptRequest, CmReply, CmRequest, DataMsg, ElAddr, ElReply, ElRequest, PeerMsg,
    SchedMsg,
};
pub use event::{BatchPolicy, EventBatch, ReceptionEvent};
pub use ids::{MsgId, NodeId, Rank};
pub use metrics::Metrics;
pub use payload::Payload;
pub use pessimism::PessimismGate;
pub use recovery::Watermarks;
pub use replay::{Offer, ProbeVerdict, ReplayError, ReplayPlan};
pub use sender_log::{SavedMsg, SenderLog};
pub use snapshot::{EngineSnapshot, ImageBlob, NodeImage};
