//! Strongly-typed identifiers used throughout the MPICH-V2 reproduction.
//!
//! The paper identifies every message by the couple *(sender's identity,
//! sender's logical clock at emission)* (§4.5). [`MsgId`] is that couple.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The rank of an MPI process inside the (single, `MPI_COMM_WORLD`-like)
/// communicator. Ranks are dense in `0..size`.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Rank as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

impl From<usize> for Rank {
    fn from(v: usize) -> Self {
        Rank(v as u32)
    }
}

/// Identity of any node participating in a run: computing nodes host one MPI
/// process each; the auxiliary roles are the reliable (or semi-reliable)
/// services of the MPICH-V2 architecture (Fig. 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A computing node's communication daemon for the given rank.
    Computing(Rank),
    /// The MPI process attached (by its "UNIX socket") to the daemon of
    /// the given rank.
    Process(Rank),
    /// An event logger; several may exist, each serving a subset of ranks.
    EventLogger(u32),
    /// A checkpoint server storing checkpoint images.
    CheckpointServer(u32),
    /// The checkpoint scheduler ordering checkpoints across nodes.
    CheckpointScheduler,
    /// The dispatcher (mpirun): launches, monitors and restarts everything.
    Dispatcher,
    /// A Channel Memory (MPICH-V1 baseline only), associated to a rank.
    ChannelMemory(u32),
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Computing(r) => write!(f, "cn{}", r.0),
            NodeId::Process(r) => write!(f, "proc{}", r.0),
            NodeId::EventLogger(i) => write!(f, "el{i}"),
            NodeId::CheckpointServer(i) => write!(f, "cs{i}"),
            NodeId::CheckpointScheduler => write!(f, "sc"),
            NodeId::Dispatcher => write!(f, "disp"),
            NodeId::ChannelMemory(i) => write!(f, "cm{i}"),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Error parsing a [`NodeId`] from its wire name (see [`NodeId`]'s
/// `FromStr`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseNodeIdError(String);

impl fmt::Display for ParseNodeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid node id {:?}", self.0)
    }
}

impl std::error::Error for ParseNodeIdError {}

impl std::str::FromStr for NodeId {
    type Err = ParseNodeIdError;

    /// Parse the compact names `Display` emits (`cn7`, `proc7`, `el0`,
    /// `cs0`, `sc`, `disp`, `cm3`) — used by progfiles and child-process
    /// role environment variables, so the address a supervisor prints is
    /// exactly the one a child parses back.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseNodeIdError(s.to_string());
        let num = |rest: &str| rest.parse::<u32>().map_err(|_| err());
        match s {
            "sc" => return Ok(NodeId::CheckpointScheduler),
            "disp" => return Ok(NodeId::Dispatcher),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("proc") {
            Ok(NodeId::Process(Rank(num(rest)?)))
        } else if let Some(rest) = s.strip_prefix("cn") {
            Ok(NodeId::Computing(Rank(num(rest)?)))
        } else if let Some(rest) = s.strip_prefix("el") {
            Ok(NodeId::EventLogger(num(rest)?))
        } else if let Some(rest) = s.strip_prefix("cs") {
            Ok(NodeId::CheckpointServer(num(rest)?))
        } else if let Some(rest) = s.strip_prefix("cm") {
            Ok(NodeId::ChannelMemory(num(rest)?))
        } else {
            Err(err())
        }
    }
}

/// The unique identifier of a message: the sender plus the sender's logical
/// clock when the `send` action ran. Because a process's clock strictly
/// increases, `MsgId`s are unique and, per (sender, receiver) pair, emitted
/// in increasing clock order over FIFO channels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// Emitting rank.
    pub sender: Rank,
    /// The sender's logical clock at emission (`H_p` in Appendix A).
    pub sender_clock: u64,
}

impl MsgId {
    /// Build a message identifier from its two components.
    pub fn new(sender: Rank, sender_clock: u64) -> Self {
        MsgId {
            sender,
            sender_clock,
        }
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({}, {})", self.sender.0, self.sender_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rank_roundtrip_and_ordering() {
        let a = Rank(3);
        let b = Rank::from(4usize);
        assert!(a < b);
        assert_eq!(b.idx(), 4);
        assert_eq!(format!("{a}"), "3");
        assert_eq!(format!("{a:?}"), "r3");
    }

    #[test]
    fn msgid_unique_per_clock() {
        let mut seen = HashSet::new();
        for clock in 0..100u64 {
            assert!(seen.insert(MsgId::new(Rank(1), clock)));
        }
        // Same clock but different sender is a different id.
        assert!(seen.insert(MsgId::new(Rank(2), 50)));
    }

    #[test]
    fn msgid_orders_by_sender_then_clock() {
        let a = MsgId::new(Rank(0), 99);
        let b = MsgId::new(Rank(1), 1);
        assert!(a < b);
        let c = MsgId::new(Rank(1), 2);
        assert!(b < c);
    }

    #[test]
    fn node_id_display_names() {
        assert_eq!(format!("{}", NodeId::Computing(Rank(7))), "cn7");
        assert_eq!(format!("{}", NodeId::EventLogger(0)), "el0");
        assert_eq!(format!("{}", NodeId::CheckpointServer(1)), "cs1");
        assert_eq!(format!("{}", NodeId::CheckpointScheduler), "sc");
        assert_eq!(format!("{}", NodeId::Dispatcher), "disp");
        assert_eq!(format!("{}", NodeId::ChannelMemory(3)), "cm3");
    }

    #[test]
    fn node_id_parses_its_own_display() {
        let all = [
            NodeId::Computing(Rank(7)),
            NodeId::Process(Rank(2)),
            NodeId::EventLogger(0),
            NodeId::CheckpointServer(1),
            NodeId::CheckpointScheduler,
            NodeId::Dispatcher,
            NodeId::ChannelMemory(3),
        ];
        for id in all {
            assert_eq!(format!("{id}").parse::<NodeId>().unwrap(), id);
        }
        assert!("".parse::<NodeId>().is_err());
        assert!("cn".parse::<NodeId>().is_err());
        assert!("xyz9".parse::<NodeId>().is_err());
        assert!("el-1".parse::<NodeId>().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let id = MsgId::new(Rank(5), 123);
        let enc = bincode::serialize(&id).unwrap();
        let dec: MsgId = bincode::deserialize(&enc).unwrap();
        assert_eq!(id, dec);
        let n = NodeId::Computing(Rank(9));
        let enc = bincode::serialize(&n).unwrap();
        let dec: NodeId = bincode::deserialize(&enc).unwrap();
        assert_eq!(n, dec);
    }
}
