//! The sender-based message log — the `SAVED_p` set of Appendix A.
//!
//! "Every time a message is sent to a computing node, it is stored locally
//! in a list for further usages (sender based). Moreover the value of the
//! sender logical clock is stored with the message copy." (§4.5)
//!
//! The log lives on the (volatile!) computing node; it is lost on a crash
//! and rebuilt during re-execution (Lemma 1), and it is *included in
//! checkpoint images* to avoid the domino effect (§4.1). Storage is
//! reclaimed by per-destination watermarks once the destination has
//! checkpointed (§4.6.1).

use crate::ids::Rank;
use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One saved emission: `(m, H_p, q)` of the protocol, keyed by the clock.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SavedMsg {
    /// Sender clock at emission (`h`).
    pub sender_clock: u64,
    /// The copied payload.
    pub payload: Payload,
}

/// Per-destination ordered log of sent payloads with byte accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SenderLog {
    /// For each destination, saved messages ordered by sender clock.
    per_dst: BTreeMap<Rank, BTreeMap<u64, Payload>>,
    /// Total payload bytes currently held.
    bytes: u64,
    /// Cumulative bytes ever appended (monotonic; for scheduler status).
    total_appended: u64,
    /// Cumulative messages ever appended.
    total_msgs: u64,
}

impl SenderLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an emission. Idempotent for a given `(dst, clock)`: during
    /// re-execution the same deterministic send re-appends the same message
    /// (Lemma 1) and must not double-count. The payload is moved in (a
    /// `Payload` clone is only a refcount bump, but the move keeps the hot
    /// path allocation-free even if the representation ever changes).
    pub fn append(&mut self, dst: Rank, sender_clock: u64, payload: Payload) {
        use std::collections::btree_map::Entry;
        let len = payload.len() as u64;
        if let Entry::Vacant(slot) = self.per_dst.entry(dst).or_default().entry(sender_clock) {
            slot.insert(payload);
            self.bytes += len;
            self.total_appended += len;
            self.total_msgs += 1;
        }
    }

    /// Retrieve the saved messages for `dst` with clock strictly greater
    /// than `after` — the re-send set of the `RESTART1`/`RESTART2` rules.
    pub fn resend_after(&self, dst: Rank, after: u64) -> impl Iterator<Item = SavedMsg> + '_ {
        self.per_dst
            .get(&dst)
            .into_iter()
            .flat_map(move |m| m.range(after + 1..))
            .map(|(&sender_clock, payload)| SavedMsg {
                sender_clock,
                payload: payload.clone(),
            })
    }

    /// A specific saved message, if still held.
    pub fn get(&self, dst: Rank, sender_clock: u64) -> Option<&Payload> {
        self.per_dst.get(&dst)?.get(&sender_clock)
    }

    /// Garbage-collect: drop every message to `dst` with clock
    /// `<= watermark` (the destination checkpointed past them, §4.6.1).
    /// Returns the number of bytes reclaimed.
    pub fn collect(&mut self, dst: Rank, watermark: u64) -> u64 {
        let Some(m) = self.per_dst.get_mut(&dst) else {
            return 0;
        };
        // `watermark + 1` overflows when watermark == u64::MAX, where the
        // bound covers the whole log: everything is collectable.
        let keep = match watermark.checked_add(1) {
            Some(bound) => m.split_off(&bound),
            None => BTreeMap::new(),
        };
        let dropped = std::mem::replace(m, keep);
        let freed: u64 = dropped.values().map(|p| p.len() as u64).sum();
        self.bytes -= freed;
        freed
    }

    /// Bytes currently held (drives checkpoint scheduling, §4.6.2).
    pub fn bytes_held(&self) -> u64 {
        self.bytes
    }

    /// Cumulative bytes ever appended.
    pub fn bytes_appended(&self) -> u64 {
        self.total_appended
    }

    /// Messages currently held.
    pub fn msgs_held(&self) -> usize {
        self.per_dst.values().map(|m| m.len()).sum()
    }

    /// Cumulative messages ever appended.
    pub fn msgs_appended(&self) -> u64 {
        self.total_msgs
    }

    /// Destinations with at least one saved message.
    pub fn destinations(&self) -> impl Iterator<Item = Rank> + '_ {
        self.per_dst
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(&r, _)| r)
    }

    /// Every held entry in `(dst, clock)` order, payloads *borrowed* —
    /// the checkpoint path clones these into image segments, which for
    /// the refcounted [`Payload`] is a pointer bump, not a byte copy.
    /// Unlike [`SenderLog::resend_after`] this covers clock 0 too.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Rank, u64, &Payload)> + '_ {
        self.per_dst
            .iter()
            .flat_map(|(&dst, m)| m.iter().map(move |(&clock, p)| (dst, clock, p)))
    }

    /// Rebuild a log from checkpoint-image segments, restoring the
    /// cumulative counters that the current entries alone cannot recover
    /// (collected entries still count toward `*_appended`).
    pub fn from_entries<I>(entries: I, total_appended: u64, total_msgs: u64) -> Self
    where
        I: IntoIterator<Item = (Rank, u64, Payload)>,
    {
        let mut log = SenderLog::new();
        for (dst, clock, payload) in entries {
            log.append(dst, clock, payload);
        }
        log.total_appended = total_appended;
        log.total_msgs = total_msgs;
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(entries: &[(u32, u64, usize)]) -> SenderLog {
        let mut l = SenderLog::new();
        for &(dst, clock, len) in entries {
            l.append(Rank(dst), clock, Payload::filled(1, len));
        }
        l
    }

    #[test]
    fn append_and_accounting() {
        let l = log_with(&[(1, 1, 10), (1, 3, 20), (2, 2, 5)]);
        assert_eq!(l.bytes_held(), 35);
        assert_eq!(l.msgs_held(), 3);
        assert_eq!(l.msgs_appended(), 3);
    }

    #[test]
    fn append_is_idempotent_per_clock() {
        let mut l = SenderLog::new();
        l.append(Rank(1), 5, Payload::filled(0, 100));
        l.append(Rank(1), 5, Payload::filled(0, 100)); // replayed send
        assert_eq!(l.bytes_held(), 100);
        assert_eq!(l.msgs_held(), 1);
        assert_eq!(l.msgs_appended(), 1);
    }

    #[test]
    fn resend_after_returns_strictly_newer_in_order() {
        let l = log_with(&[(1, 1, 1), (1, 5, 1), (1, 9, 1), (2, 4, 1)]);
        let clocks: Vec<u64> = l.resend_after(Rank(1), 4).map(|s| s.sender_clock).collect();
        assert_eq!(clocks, vec![5, 9]);
        let clocks: Vec<u64> = l.resend_after(Rank(1), 0).map(|s| s.sender_clock).collect();
        assert_eq!(clocks, vec![1, 5, 9]);
        assert_eq!(l.resend_after(Rank(3), 0).count(), 0);
    }

    #[test]
    fn collect_frees_only_at_or_below_watermark() {
        let mut l = log_with(&[(1, 1, 10), (1, 5, 20), (1, 9, 30)]);
        let freed = l.collect(Rank(1), 5);
        assert_eq!(freed, 30);
        assert_eq!(l.bytes_held(), 30);
        assert_eq!(l.resend_after(Rank(1), 0).count(), 1);
        assert!(l.get(Rank(1), 9).is_some());
        assert!(l.get(Rank(1), 5).is_none());
        // Collecting an unknown destination is a no-op.
        assert_eq!(l.collect(Rank(7), 100), 0);
    }

    #[test]
    fn collect_at_max_watermark_drops_everything_without_overflow() {
        // Regression: `split_off(&(watermark + 1))` overflowed (debug
        // panic) when a peer advertised u64::MAX as its watermark.
        let mut l = log_with(&[(1, 1, 10), (1, u64::MAX, 20)]);
        let freed = l.collect(Rank(1), u64::MAX);
        assert_eq!(freed, 30);
        assert_eq!(l.bytes_held(), 0);
        assert_eq!(l.msgs_held(), 0);
    }

    #[test]
    fn destinations_skips_emptied() {
        let mut l = log_with(&[(1, 1, 10), (2, 1, 10)]);
        l.collect(Rank(1), 10);
        let d: Vec<Rank> = l.destinations().collect();
        assert_eq!(d, vec![Rank(2)]);
    }

    #[test]
    fn iter_entries_covers_clock_zero_and_rebuild_restores_counters() {
        let mut l = log_with(&[(1, 0, 10), (1, 5, 20), (2, 3, 7)]);
        l.collect(Rank(2), 3); // drop one entry; cumulative counters keep it
        let entries: Vec<(Rank, u64, Payload)> = l
            .iter_entries()
            .map(|(d, c, p)| (d, c, p.clone()))
            .collect();
        assert_eq!(
            entries.iter().map(|&(d, c, _)| (d, c)).collect::<Vec<_>>(),
            vec![(Rank(1), 0), (Rank(1), 5)]
        );
        let rebuilt = SenderLog::from_entries(entries, l.bytes_appended(), l.msgs_appended());
        assert_eq!(rebuilt.bytes_held(), l.bytes_held());
        assert_eq!(rebuilt.msgs_held(), l.msgs_held());
        assert_eq!(rebuilt.bytes_appended(), 37);
        assert_eq!(rebuilt.msgs_appended(), 3);
        assert!(rebuilt.get(Rank(1), 0).is_some());
    }

    #[test]
    fn snapshot_roundtrip() {
        let l = log_with(&[(1, 1, 10), (2, 3, 7)]);
        let enc = bincode::serialize(&l).unwrap();
        let dec: SenderLog = bincode::deserialize(&enc).unwrap();
        assert_eq!(dec.bytes_held(), l.bytes_held());
        assert_eq!(dec.msgs_held(), l.msgs_held());
        assert!(dec.get(Rank(2), 3).is_some());
    }
}
