//! The per-process logical clock of the MPICH-V2 protocol.
//!
//! §4.1: "Each time a process sends a message, or receives one, it increases
//! a local logical clock." The clock value at a reception is the logical
//! *date* logged on the event logger; the clock value at an emission is half
//! of the message identifier.

use serde::{Deserialize, Serialize};

/// A strictly monotonic logical clock (`H_p` in Appendix A).
///
/// The clock starts at 0 and ticks on every send and on every delivery
/// (the two event kinds that matter to the logging protocol). Checkpoint
/// images store the clock so a restarted process resumes exactly where the
/// image was taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalClock(u64);

impl LogicalClock {
    /// A fresh clock at the initial state (value 0).
    pub const fn new() -> Self {
        LogicalClock(0)
    }

    /// Rebuild a clock from a checkpointed value.
    pub const fn from_value(v: u64) -> Self {
        LogicalClock(v)
    }

    /// Current value (`H_p`).
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Advance the clock by one step and return the *new* value, which is
    /// the date associated with the event that caused the tick.
    #[inline]
    pub fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks_monotonically() {
        let mut c = LogicalClock::new();
        assert_eq!(c.value(), 0);
        let mut prev = 0;
        for _ in 0..1000 {
            let v = c.tick();
            assert!(v > prev);
            assert_eq!(v, prev + 1);
            prev = v;
        }
    }

    #[test]
    fn restores_from_checkpoint_value() {
        let mut c = LogicalClock::from_value(42);
        assert_eq!(c.value(), 42);
        assert_eq!(c.tick(), 43);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = LogicalClock::new();
        c.tick();
        c.tick();
        let enc = bincode::serialize(&c).unwrap();
        let dec: LogicalClock = bincode::deserialize(&enc).unwrap();
        assert_eq!(c, dec);
    }
}
