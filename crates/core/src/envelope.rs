//! Wire-level message vocabulary shared by every component of the system.
//!
//! Connections in an MPICH-V2 deployment are typed by who talks to whom
//! (Fig. 3): computing daemons exchange [`PeerMsg`]s with each other,
//! [`ElRequest`]/[`ElReply`] with their event logger, [`CkptRequest`]/
//! [`CkptReply`] with a checkpoint server, and [`SchedMsg`]s with the
//! checkpoint scheduler. The MPICH-V1 baseline adds the Channel-Memory
//! vocabulary ([`CmRequest`]/[`CmReply`]).

use crate::event::{EventBatch, ReceptionEvent};
use crate::ids::{MsgId, Rank};
use crate::payload::Payload;
use crate::snapshot::ImageBlob;
use serde::{Deserialize, Serialize};

/// An application message as it travels between two communication daemons.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataMsg {
    /// Unique identifier: (sender, sender clock at emission).
    pub id: MsgId,
    /// Destination rank.
    pub dst: Rank,
    /// Opaque MPI-layer bytes (the MPI library's header + user data).
    pub payload: Payload,
}

impl DataMsg {
    /// Bytes of user-visible payload carried.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Messages exchanged between two computing-node daemons.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerMsg {
    /// A (possibly re-sent) application message.
    Data(DataMsg),
    /// First phase of the recovery handshake (Appendix A, `on Restart`):
    /// the restarting process tells each peer the clock of the last message
    /// it (provably, per its restored state) received from that peer
    /// (`HR_p[q]`). The peer adopts it as `HS_q[p]` and re-sends newer
    /// saved messages.
    Restart1 {
        /// `HR_p[q]` of the restarting sender, from its restored state.
        last_received: u64,
    },
    /// Second phase (`on RECV(RESTART1)` reply): the live peer answers with
    /// its own `HR_q[p]` so the restarting process can suppress
    /// re-transmissions of messages the peer already consumed.
    Restart2 {
        /// `HR_q[p]` of the replying peer.
        last_received: u64,
    },
    /// Garbage-collection notification (§4.6.1): the emitting node completed
    /// a checkpoint; the receiving *sender* may drop every saved message
    /// destined to the emitter whose sender clock is `<= watermark`.
    CkptNotify {
        /// Highest sender clock (of the *receiving* daemon) that the
        /// checkpointed node had delivered before its checkpoint.
        watermark: u64,
    },
}

/// Address of one event-logger replica in a sharded, replicated EL
/// deployment: the shard (consistent-hash partition of receiver ranks)
/// and the replica index within it. The unsharded deployment is the
/// degenerate `{shard: 0, replica: 0}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElAddr {
    /// Shard index (consistent-hash partition of receiver ranks).
    pub shard: u32,
    /// Replica index within the shard.
    pub replica: u32,
}

impl ElAddr {
    /// Flat service index used by registries that enumerate every
    /// replica of every shard (`flat = shard * replicas + replica`).
    pub fn flat(self, replicas: u32) -> u32 {
        self.shard * replicas.max(1) + self.replica
    }

    /// Inverse of [`flat`](Self::flat).
    pub fn from_flat(flat: u32, replicas: u32) -> Self {
        let r = replicas.max(1);
        ElAddr {
            shard: flat / r,
            replica: flat % r,
        }
    }
}

impl std::fmt::Display for ElAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "el-s{}r{}", self.shard, self.replica)
    }
}

/// Requests a computing daemon sends to its event logger.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElRequest {
    /// Append a batch of reception events (asynchronous; acked).
    Log(EventBatch),
    /// On restart: fetch every stored event with
    /// `receiver_clock > after_clock` (the `DownloadEL(H_p)` routine).
    Download {
        /// Rank whose events to fetch.
        rank: Rank,
        /// Clock of the restored checkpoint.
        after_clock: u64,
    },
    /// Drop events with `receiver_clock <= up_to` after a successful
    /// checkpoint (storage reclamation; optional in the paper).
    Truncate {
        /// Rank whose events to truncate.
        rank: Rank,
        /// Checkpoint clock.
        up_to: u64,
    },
}

/// Replies from an event logger.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElReply {
    /// Every event with `receiver_clock <= up_to` is durably stored.
    /// Opens the pessimism gate (§4.5: "the communication daemon does not
    /// send messages before the event logger has acknowledged the reception
    /// of the preceding reception events").
    Ack {
        /// Highest durably-stored receiver clock.
        up_to: u64,
    },
    /// Answer to [`ElRequest::Download`], in receiver-clock order.
    Events(Vec<ReceptionEvent>),
}

/// Requests to a checkpoint server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CkptRequest {
    /// Store a checkpoint image for `rank` taken at logical `clock`.
    Put {
        /// Checkpointing rank.
        rank: Rank,
        /// Logical clock of the image.
        clock: u64,
        /// The image as a zero-copy segment blob
        /// ([`crate::snapshot::NodeImage::encode_blob`]).
        image: ImageBlob,
    },
    /// Fetch the latest stored image for `rank` (on restart).
    GetLatest {
        /// Restarting rank.
        rank: Rank,
    },
}

/// Replies from a checkpoint server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CkptReply {
    /// The image identified by (rank, clock) is durably stored.
    Stored {
        /// Acknowledged rank.
        rank: Rank,
        /// Acknowledged image clock.
        clock: u64,
    },
    /// Answer to [`CkptRequest::GetLatest`]. `None` means no image exists
    /// and the process must restart from the beginning (§4.3: "may restart
    /// from scratch, at worst").
    Image {
        /// The image clock, if any.
        clock: Option<u64>,
        /// The image blob (empty when `clock` is `None`).
        image: ImageBlob,
    },
}

/// Messages between the checkpoint scheduler and computing daemons.
//
// `Status` dwarfs the other variants (it carries four histogram
// summaries), but these messages are rare — one per rank per scheduler
// round — and transient, so the size skew costs nothing worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedMsg {
    /// Scheduler asks a daemon for its logging status (§4.6.2: "it asks the
    /// communication daemons to send their status (in terms of the amount
    /// of logged messages)").
    StatusRequest,
    /// Daemon's answer.
    Status {
        /// Responding rank.
        rank: Rank,
        /// Bytes currently held in the sender-based log.
        logged_bytes: u64,
        /// Cumulative bytes sent so far.
        sent_bytes: u64,
        /// Cumulative bytes received so far.
        recv_bytes: u64,
        /// Event batches shipped to the event logger (lazy batching).
        el_batches: u64,
        /// Reception events carried by those batches.
        el_events: u64,
        /// Event-logger acknowledgements received.
        el_acks: u64,
        /// Largest single batch shipped, in events.
        el_max_batch: u64,
        /// Latency-histogram summaries for the hot protocol intervals
        /// (gate wait, EL ack RTT, checkpoint upload, replay).
        timings: mvr_obs::TimingSummary,
    },
    /// Scheduler orders the daemon to checkpoint now.
    CheckpointOrder,
    /// Daemon reports a completed checkpoint at `clock`.
    CheckpointDone {
        /// Reporting rank.
        rank: Rank,
        /// Logical clock of the completed image.
        clock: u64,
    },
}

/// Channel-Memory messages (MPICH-V1 baseline, §3.2): every message to a
/// process transits through, and is stored on, the reliable Channel Memory
/// associated with that process; receptions are pulled from it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmRequest {
    /// A sender pushes a message for the CM's owner rank.
    Push(DataMsg),
    /// The owner asks for its next reception, `seq` being the index of the
    /// reception in its own history (so a re-executing process re-reads
    /// receptions from an earlier index).
    Pull {
        /// Index of the requested reception in the owner's history.
        seq: u64,
    },
    /// The owner probes whether its `seq`-th reception is already stored.
    Probe {
        /// Index probed.
        seq: u64,
    },
}

/// Channel-Memory replies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmReply {
    /// The pushed message is stored (sender may proceed).
    PushAck,
    /// The `seq`-th reception of the owner.
    Msg {
        /// Echoed sequence index.
        seq: u64,
        /// The stored message.
        msg: DataMsg,
    },
    /// Answer to [`CmRequest::Probe`].
    ProbeAck {
        /// Echoed sequence index.
        seq: u64,
        /// Whether the reception is stored.
        pending: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_msg_roundtrip() {
        let m = PeerMsg::Data(DataMsg {
            id: MsgId::new(Rank(1), 7),
            dst: Rank(2),
            payload: Payload::from_vec(vec![1, 2, 3]),
        });
        let enc = bincode::serialize(&m).unwrap();
        assert_eq!(m, bincode::deserialize::<PeerMsg>(&enc).unwrap());

        let r = PeerMsg::Restart1 { last_received: 42 };
        let enc = bincode::serialize(&r).unwrap();
        assert_eq!(r, bincode::deserialize::<PeerMsg>(&enc).unwrap());
    }

    #[test]
    fn el_addr_flat_roundtrip() {
        for replicas in 1..4u32 {
            for shard in 0..3 {
                for replica in 0..replicas {
                    let a = ElAddr { shard, replica };
                    assert_eq!(ElAddr::from_flat(a.flat(replicas), replicas), a);
                }
            }
        }
        // R=0 is treated as R=1 (the unreplicated deployment).
        assert_eq!(
            ElAddr::from_flat(2, 0),
            ElAddr {
                shard: 2,
                replica: 0
            }
        );
    }

    #[test]
    fn el_request_roundtrip() {
        let req = ElRequest::Download {
            rank: Rank(3),
            after_clock: 10,
        };
        let enc = bincode::serialize(&req).unwrap();
        assert_eq!(req, bincode::deserialize::<ElRequest>(&enc).unwrap());
    }

    #[test]
    fn ckpt_image_roundtrip() {
        let req = CkptRequest::Put {
            rank: Rank(0),
            clock: 99,
            image: ImageBlob {
                meta: Payload::filled(7, 16),
                segments: vec![Payload::filled(1, 128), Payload::filled(2, 64)],
            },
        };
        let enc = bincode::serialize(&req).unwrap();
        assert_eq!(req, bincode::deserialize::<CkptRequest>(&enc).unwrap());
    }

    #[test]
    fn data_msg_len() {
        let m = DataMsg {
            id: MsgId::new(Rank(0), 1),
            dst: Rank(1),
            payload: Payload::empty(),
        };
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
