//! Checkpoint images.
//!
//! §4.6.1: the checkpoint of a computing node has two parts — the MPI
//! process image (Condor in the paper; a serialized application state in
//! this reproduction, see DESIGN.md) and the communication daemon's state,
//! "serializing all the message information". The daemon part is
//! [`EngineSnapshot`]; the whole node image shipped to the checkpoint
//! server is [`NodeImage`].
//!
//! Crucially the image *includes the sender log* — "the first process has
//! to restart with the copy of old messages, which are thus to be included
//! in the checkpoints" (§4.1, domino-effect avoidance).

use crate::ids::Rank;
use crate::payload::Payload;
use crate::recovery::Watermarks;
use crate::sender_log::SenderLog;
use serde::{Deserialize, Serialize};

/// The protocol-engine half of a checkpoint image.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Rank of the checkpointed process.
    pub rank: Rank,
    /// Size of the world (number of computing processes).
    pub world: u32,
    /// Logical clock at the checkpoint.
    pub clock: u64,
    /// `HR`/`HS` watermark vectors at the checkpoint.
    pub watermarks: Watermarks,
    /// The sender-based message log (`SAVED`), kept to serve re-sends after
    /// restart without rolling this process back (domino avoidance).
    pub saved: SenderLog,
}

/// A complete checkpoint image for one computing node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeImage {
    /// The communication daemon / protocol engine state.
    pub engine: EngineSnapshot,
    /// Serialized MPI-library state (matching queues etc.), opaque here.
    pub mpi_state: Payload,
    /// Serialized application state, opaque here.
    pub app_state: Payload,
}

/// A zero-copy checkpoint image: a small bincode-encoded metadata header
/// plus the image's byte segments as *refcounted* [`Payload`] handles.
///
/// [`NodeImage::encode`] flattens the whole image — sender log included —
/// through bincode's `serialize_bytes`, memcpy-ing every logged payload
/// into one fresh buffer. For a log-heavy image (the common case: §4.1
/// requires the `SAVED` set inside the checkpoint) that copy dominates
/// checkpoint cost. `ImageBlob` instead ships each logged payload as a
/// clone of the *same* `Bytes` the sender log already holds: building the
/// blob allocates only the metadata header, no payload bytes move.
///
/// Segment order is fixed: every sender-log payload in `(dst, clock)`
/// order (the order [`SenderLog::iter_entries`] yields, mirrored by
/// `log_dirs` in the header), then `mpi_state`, then `app_state`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageBlob {
    /// Bincode-encoded `ImageMeta` header.
    pub meta: Payload,
    /// The image's byte segments (see segment order above).
    pub segments: Vec<Payload>,
}

/// The header of an [`ImageBlob`]: everything in a [`NodeImage`] except
/// the raw payload bytes, plus the directory locating each segment.
#[derive(Serialize, Deserialize)]
struct ImageMeta {
    rank: Rank,
    world: u32,
    clock: u64,
    watermarks: Watermarks,
    /// Per destination, the sender clocks of its logged payloads, in
    /// order — pairs with the leading segments one-to-one.
    log_dirs: Vec<(Rank, Vec<u64>)>,
    log_total_appended: u64,
    log_total_msgs: u64,
}

impl ImageBlob {
    /// A blob carrying no image (the checkpoint server's "no image
    /// stored" reply).
    pub fn empty() -> Self {
        ImageBlob {
            meta: Payload::empty(),
            segments: Vec::new(),
        }
    }

    /// Whether this blob carries no image at all.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.segments.is_empty()
    }

    /// Total bytes carried (header + all segments) — the store's byte
    /// accounting and the scheduler's transfer-cost estimate.
    pub fn len(&self) -> usize {
        self.meta.len() + self.segments.iter().map(|s| s.len()).sum::<usize>()
    }
}

impl NodeImage {
    /// Encode to bytes for shipping to the checkpoint server.
    pub fn encode(&self) -> Payload {
        Payload::from_vec(bincode::serialize(self).expect("NodeImage serialization cannot fail"))
    }

    /// Decode an image fetched from the checkpoint server.
    pub fn decode(bytes: &[u8]) -> Result<Self, bincode::Error> {
        bincode::deserialize(bytes)
    }

    /// Encode as an [`ImageBlob`] without copying any payload bytes: the
    /// sender log's payloads and the state blobs become refcount-bumped
    /// segments of the same underlying buffers.
    pub fn encode_blob(&self) -> ImageBlob {
        let mut log_dirs: Vec<(Rank, Vec<u64>)> = Vec::new();
        let mut segments = Vec::new();
        for (dst, clock, payload) in self.engine.saved.iter_entries() {
            match log_dirs.last_mut() {
                Some((d, clocks)) if *d == dst => clocks.push(clock),
                _ => log_dirs.push((dst, vec![clock])),
            }
            segments.push(payload.clone());
        }
        segments.push(self.mpi_state.clone());
        segments.push(self.app_state.clone());
        let meta = ImageMeta {
            rank: self.engine.rank,
            world: self.engine.world,
            clock: self.engine.clock,
            watermarks: self.engine.watermarks.clone(),
            log_dirs,
            log_total_appended: self.engine.saved.bytes_appended(),
            log_total_msgs: self.engine.saved.msgs_appended(),
        };
        ImageBlob {
            meta: Payload::from_vec(
                bincode::serialize(&meta).expect("ImageMeta serialization cannot fail"),
            ),
            segments,
        }
    }

    /// Decode an [`ImageBlob`] back into an image. The rebuilt sender log
    /// shares the blob's segment buffers — still no byte copies.
    pub fn decode_blob(blob: &ImageBlob) -> Result<Self, bincode::Error> {
        let meta: ImageMeta = bincode::deserialize(&blob.meta)?;
        let n_logged: usize = meta.log_dirs.iter().map(|(_, c)| c.len()).sum();
        if blob.segments.len() != n_logged + 2 {
            return Err(<bincode::Error as serde::de::Error>::custom(format!(
                "truncated image blob: {} segments, expected {}",
                blob.segments.len(),
                n_logged + 2
            )));
        }
        let mut segs = blob.segments.iter();
        let entries = meta.log_dirs.iter().flat_map(|(dst, clocks)| {
            clocks
                .iter()
                .map(|&c| (*dst, c, segs.next().expect("counted above").clone()))
                .collect::<Vec<_>>()
        });
        let saved = SenderLog::from_entries(entries, meta.log_total_appended, meta.log_total_msgs);
        let mpi_state = segs.next().expect("counted above").clone();
        let app_state = segs.next().expect("counted above").clone();
        Ok(NodeImage {
            engine: EngineSnapshot {
                rank: meta.rank,
                world: meta.world,
                clock: meta.clock,
                watermarks: meta.watermarks,
                saved,
            },
            mpi_state,
            app_state,
        })
    }

    /// Total encoded size in bytes (for scheduler cost estimation).
    pub fn size_bytes(&self) -> usize {
        self.encode_blob().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 4, Payload::filled(9, 32));
        let mut marks = Watermarks::new();
        marks.on_delivery_from(Rank(1), 3);
        marks.on_transmit_to(Rank(1), 4);
        let img = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 4,
                clock: 17,
                watermarks: marks,
                saved,
            },
            mpi_state: Payload::from_vec(vec![1, 2, 3]),
            app_state: Payload::from_vec(vec![4, 5]),
        };
        let enc = img.encode();
        let dec = NodeImage::decode(&enc).unwrap();
        assert_eq!(dec.engine.rank, Rank(0));
        assert_eq!(dec.engine.clock, 17);
        assert_eq!(dec.engine.watermarks.hr(Rank(1)), 3);
        assert!(dec.engine.saved.get(Rank(1), 4).is_some());
        assert_eq!(dec.app_state, Payload::from_vec(vec![4, 5]));
    }

    #[test]
    fn blob_roundtrip_preserves_everything() {
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 0, Payload::filled(3, 16)); // clock 0 must survive
        saved.append(Rank(1), 4, Payload::filled(9, 32));
        saved.append(Rank(2), 7, Payload::filled(5, 8));
        let mut marks = Watermarks::new();
        marks.on_delivery_from(Rank(1), 3);
        marks.on_transmit_to(Rank(1), 4);
        let img = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 4,
                clock: 17,
                watermarks: marks,
                saved,
            },
            mpi_state: Payload::from_vec(vec![1, 2, 3]),
            app_state: Payload::from_vec(vec![4, 5]),
        };
        let blob = img.encode_blob();
        assert_eq!(blob.segments.len(), 3 + 2);
        let dec = NodeImage::decode_blob(&blob).unwrap();
        assert_eq!(dec.engine.rank, Rank(0));
        assert_eq!(dec.engine.world, 4);
        assert_eq!(dec.engine.clock, 17);
        assert_eq!(dec.engine.watermarks.hr(Rank(1)), 3);
        assert!(dec.engine.saved.get(Rank(1), 0).is_some());
        assert!(dec.engine.saved.get(Rank(1), 4).is_some());
        assert!(dec.engine.saved.get(Rank(2), 7).is_some());
        assert_eq!(dec.engine.saved.bytes_held(), 56);
        assert_eq!(dec.engine.saved.msgs_appended(), 3);
        assert_eq!(dec.mpi_state, img.mpi_state);
        assert_eq!(dec.app_state, img.app_state);
    }

    #[test]
    fn blob_encode_and_decode_share_payload_buffers() {
        // The whole point: encoding an image and decoding it back never
        // copies payload bytes — segments alias the source buffers.
        let big = Payload::filled(1, 4096);
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 2, big.clone());
        let img = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 2,
                clock: 5,
                watermarks: Watermarks::new(),
                saved,
            },
            mpi_state: Payload::filled(2, 512),
            app_state: Payload::empty(),
        };
        let blob = img.encode_blob();
        assert_eq!(
            blob.segments[0].as_slice().as_ptr(),
            big.as_slice().as_ptr()
        );
        assert_eq!(
            blob.segments[1].as_slice().as_ptr(),
            img.mpi_state.as_slice().as_ptr()
        );
        let dec = NodeImage::decode_blob(&blob).unwrap();
        assert_eq!(
            dec.engine
                .saved
                .get(Rank(1), 2)
                .unwrap()
                .as_slice()
                .as_ptr(),
            big.as_slice().as_ptr()
        );
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 1, Payload::filled(0, 8));
        let img = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 2,
                clock: 1,
                watermarks: Watermarks::new(),
                saved,
            },
            mpi_state: Payload::empty(),
            app_state: Payload::empty(),
        };
        let mut blob = img.encode_blob();
        blob.segments.pop();
        assert!(NodeImage::decode_blob(&blob).is_err());
        assert!(NodeImage::decode_blob(&ImageBlob::empty()).is_err());
    }

    #[test]
    fn size_reflects_sender_log() {
        let empty = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 2,
                clock: 0,
                watermarks: Watermarks::new(),
                saved: SenderLog::new(),
            },
            mpi_state: Payload::empty(),
            app_state: Payload::empty(),
        };
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 1, Payload::filled(0, 10_000));
        let full = NodeImage {
            engine: EngineSnapshot {
                saved,
                ..empty.engine.clone()
            },
            ..empty.clone()
        };
        assert!(full.size_bytes() > empty.size_bytes() + 9_000);
    }
}
