//! Checkpoint images.
//!
//! §4.6.1: the checkpoint of a computing node has two parts — the MPI
//! process image (Condor in the paper; a serialized application state in
//! this reproduction, see DESIGN.md) and the communication daemon's state,
//! "serializing all the message information". The daemon part is
//! [`EngineSnapshot`]; the whole node image shipped to the checkpoint
//! server is [`NodeImage`].
//!
//! Crucially the image *includes the sender log* — "the first process has
//! to restart with the copy of old messages, which are thus to be included
//! in the checkpoints" (§4.1, domino-effect avoidance).

use crate::ids::Rank;
use crate::payload::Payload;
use crate::recovery::Watermarks;
use crate::sender_log::SenderLog;
use serde::{Deserialize, Serialize};

/// The protocol-engine half of a checkpoint image.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Rank of the checkpointed process.
    pub rank: Rank,
    /// Size of the world (number of computing processes).
    pub world: u32,
    /// Logical clock at the checkpoint.
    pub clock: u64,
    /// `HR`/`HS` watermark vectors at the checkpoint.
    pub watermarks: Watermarks,
    /// The sender-based message log (`SAVED`), kept to serve re-sends after
    /// restart without rolling this process back (domino avoidance).
    pub saved: SenderLog,
}

/// A complete checkpoint image for one computing node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeImage {
    /// The communication daemon / protocol engine state.
    pub engine: EngineSnapshot,
    /// Serialized MPI-library state (matching queues etc.), opaque here.
    pub mpi_state: Payload,
    /// Serialized application state, opaque here.
    pub app_state: Payload,
}

impl NodeImage {
    /// Encode to bytes for shipping to the checkpoint server.
    pub fn encode(&self) -> Payload {
        Payload::from_vec(bincode::serialize(self).expect("NodeImage serialization cannot fail"))
    }

    /// Decode an image fetched from the checkpoint server.
    pub fn decode(bytes: &[u8]) -> Result<Self, bincode::Error> {
        bincode::deserialize(bytes)
    }

    /// Total encoded size in bytes (for scheduler cost estimation).
    pub fn size_bytes(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 4, Payload::filled(9, 32));
        let mut marks = Watermarks::new();
        marks.on_delivery_from(Rank(1), 3);
        marks.on_transmit_to(Rank(1), 4);
        let img = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 4,
                clock: 17,
                watermarks: marks,
                saved,
            },
            mpi_state: Payload::from_vec(vec![1, 2, 3]),
            app_state: Payload::from_vec(vec![4, 5]),
        };
        let enc = img.encode();
        let dec = NodeImage::decode(&enc).unwrap();
        assert_eq!(dec.engine.rank, Rank(0));
        assert_eq!(dec.engine.clock, 17);
        assert_eq!(dec.engine.watermarks.hr(Rank(1)), 3);
        assert!(dec.engine.saved.get(Rank(1), 4).is_some());
        assert_eq!(dec.app_state, Payload::from_vec(vec![4, 5]));
    }

    #[test]
    fn size_reflects_sender_log() {
        let empty = NodeImage {
            engine: EngineSnapshot {
                rank: Rank(0),
                world: 2,
                clock: 0,
                watermarks: Watermarks::new(),
                saved: SenderLog::new(),
            },
            mpi_state: Payload::empty(),
            app_state: Payload::empty(),
        };
        let mut saved = SenderLog::new();
        saved.append(Rank(1), 1, Payload::filled(0, 10_000));
        let full = NodeImage {
            engine: EngineSnapshot {
                saved,
                ..empty.engine.clone()
            },
            ..empty.clone()
        };
        assert!(full.size_bytes() > empty.size_bytes() + 9_000);
    }
}
