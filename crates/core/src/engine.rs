//! The MPICH-V2 protocol engine — a sans-IO state machine.
//!
//! The engine implements the Appendix-A protocol: the `send`, `recv` and
//! `UnDetAction` (probe) actions, and the `on Restart` / `RESTART1` /
//! `RESTART2` rules, plus checkpointing and garbage collection. It is
//! driven by [`Input`]s and emits [`Output`] commands; all IO (threads,
//! streams, the event-logger connection) lives in `mvr-runtime`, and the
//! discrete-event simulator can drive the same machine. This keeps the
//! protocol testable in isolation: the unit tests below run whole
//! multi-process crash/recovery scenarios by shuttling `Output`s between
//! engines by hand.
//!
//! # Pessimism invariant
//!
//! No application payload is handed to the transport while a reception
//! event is still unacknowledged by the event logger. *All* data
//! transmissions — fresh sends **and** recovery re-sends — are funneled
//! through the gated queue; a re-send of a payload whose original
//! transmission is itself still gated must not leak early. Control
//! messages (`RESTART1/2`, `CkptNotify`) bypass the gate: they carry only
//! watermark knowledge that is safe to expose (see `recovery.rs`).

use crate::clock::LogicalClock;
use crate::envelope::{DataMsg, PeerMsg};
use crate::event::{BatchPolicy, EventBatch, ReceptionEvent};
use crate::ids::{MsgId, Rank};
use crate::metrics::Metrics;
use crate::payload::Payload;
use crate::pessimism::PessimismGate;
use crate::recovery::Watermarks;
use crate::replay::{Offer, ProbeVerdict, ReplayError, ReplayPlan};
use crate::sender_log::SenderLog;
use crate::snapshot::EngineSnapshot;
use mvr_obs::{ProtoEvent, ProtocolTimings, Recorder, SendDisposition};
use std::collections::VecDeque;

/// Stimuli the hosting daemon feeds into the engine.
#[derive(Clone, Debug)]
pub enum Input {
    /// The MPI process performs a channel-level blocking send (`PIbsend`).
    AppSend {
        /// Destination rank.
        dst: Rank,
        /// MPI-layer bytes.
        payload: Payload,
    },
    /// The MPI process blocks in `PIbrecv`, ready for the next delivery.
    AppRecv,
    /// The MPI process probes for a pending message (`PInprobe`).
    AppProbe,
    /// A message arrived from a peer daemon.
    Peer {
        /// Emitting peer.
        from: Rank,
        /// The message.
        msg: PeerMsg,
    },
    /// The event logger acknowledged durability of all events up to the
    /// given receiver clock.
    ElAck {
        /// Highest durable receiver clock.
        up_to: u64,
    },
    /// One replica of this rank's event-logger shard acknowledged
    /// durability up to the given receiver clock. The gate only trusts
    /// the *quorum* watermark derived from these (see
    /// [`V2Engine::set_el_replication`]); with `el_replicas <= 1` this
    /// degenerates to [`Input::ElAck`].
    ElReplicaAck {
        /// Replica index within this rank's shard.
        replica: u32,
        /// Highest receiver clock that replica has durably stored.
        up_to: u64,
    },
    /// The checkpoint scheduler ordered a checkpoint.
    CheckpointOrder,
    /// The runtime confirms the checkpoint image was stored durably.
    CheckpointStored,
    /// The hosting daemon is idle: ship any pending reception events now
    /// (bounds event latency under a lazy [`BatchPolicy`]).
    FlushEvents,
}

/// Commands the engine asks the hosting daemon to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Ship a message to a peer daemon.
    Transmit {
        /// Destination peer.
        to: Rank,
        /// The message.
        msg: PeerMsg,
    },
    /// Append events to the event logger (asynchronously; the EL will ack).
    LogEvents(EventBatch),
    /// Hand a message to the blocked MPI process (answers `AppRecv`).
    Deliver {
        /// Original sender rank.
        from: Rank,
        /// MPI-layer bytes.
        payload: Payload,
    },
    /// Answer a pending `AppProbe`.
    ProbeAnswer(bool),
    /// Ask the EL to drop events at or below `up_to` (post-checkpoint).
    ElTruncate {
        /// Checkpoint clock.
        up_to: u64,
    },
    /// Replay finished; execution is live again (informational).
    ReplayComplete,
}

/// Execution mode.
#[derive(Clone, Debug)]
enum Mode {
    /// Live execution.
    Normal,
    /// Re-execution: forced delivery order from the replay plan.
    Replay(ReplayPlan),
}

/// The MPICH-V2 protocol engine for one computing process.
///
/// `Clone` is provided for state-space exploration (the exhaustive
/// interleaving tests clone whole engines to branch executions).
#[derive(Clone, Debug)]
pub struct V2Engine {
    rank: Rank,
    world: u32,
    clock: LogicalClock,
    saved: SenderLog,
    marks: Watermarks,
    gate: PessimismGate,
    mode: Mode,
    /// Arrived, not-yet-delivered messages (normal mode), kept ascending
    /// in sender clock *per sender* (cross-sender order is free). Arrival
    /// order cannot be trusted wholesale: an in-flight message emitted to
    /// a dead incarnation can surface in the new incarnation's mailbox
    /// ahead of the RESTART resends that precede it in sender-clock
    /// order, so duplicates are detected by exact membership (plus `HR`
    /// for delivered clocks), never by a high-watermark on arrivals.
    recv_buffer: VecDeque<(Rank, u64, Payload)>,
    /// Data transmissions waiting behind the pessimism gate (FIFO),
    /// each carrying its enqueue timestamp for the gate-wait histogram.
    gated: VecDeque<(Rank, PeerMsg, u64)>,
    app_waiting_recv: bool,
    app_waiting_probe: bool,
    /// Unsuccessful probes since the last delivery (§4.5).
    probes_since_delivery: u32,
    /// Peers whose post-restart "connection" is established: after a
    /// recovery, data from a peer is dropped until its `RESTART1`/
    /// `RESTART2` arrives — the analog of in-flight bytes dying with the
    /// old TCP connection. (`None` = not recovering; all peers accepted.)
    handshaken: Option<std::collections::BTreeSet<Rank>>,
    /// When to ship accumulated reception events to the event logger.
    policy: BatchPolicy,
    /// Current flush threshold under [`BatchPolicy::Adaptive`] (unused
    /// otherwise): widened on fast EL acks, halved on gate deferrals.
    adaptive_limit: usize,
    /// Delivered-but-not-yet-shipped reception events, in receiver-clock
    /// order. The gate already counts them as scheduled; they are volatile
    /// and die with a crash — which is safe, because no transmission can
    /// have depended on them (the gate stays shut until their EL ack).
    pending_events: Vec<ReceptionEvent>,
    /// A checkpoint order is pending, waiting for quiescence.
    ckpt_pending: bool,
    /// The checkpoint currently being stored, if any.
    ckpt_in_flight: Option<CkptInFlight>,
    metrics: Metrics,
    outputs: VecDeque<Output>,
    /// Flight recorder (disabled by default: one atomic load per
    /// would-be record). Shared with the hosting daemon.
    obs: Recorder,
    /// Latency histograms for the four hot protocol intervals.
    timings: ProtocolTimings,
    /// Shipped-but-unacked event batches: highest receiver clock the
    /// batch covers, plus its ship timestamp (EL ack RTT accounting).
    el_inflight: VecDeque<(u64, u64)>,
    /// Replication factor of this rank's EL shard (1 = unreplicated).
    el_replicas: u32,
    /// Acks required before the gate trusts a watermark.
    el_quorum: u32,
    /// Per-replica monotone acked watermarks (`el_replicas` entries;
    /// empty when unreplicated — `Input::ElAck` bypasses this).
    el_replica_acked: Vec<u64>,
    /// Highest quorum watermark already advanced past (dedupes quorum
    /// recomputation: only a strictly newer watermark re-enters
    /// [`on_el_ack`](Self::on_el_ack)).
    el_quorum_acked: u64,
    /// Replay in progress: start timestamp and `replayed_deliveries`
    /// at recovery begin.
    replay_started: Option<(u64, u64)>,
}

/// A checkpoint image in flight to the checkpoint server: the snapshot
/// clock, plus the per-peer HR watermarks captured *at the snapshot
/// instant*. The GC notifications must use these — deliveries continue
/// while the image transfer is in flight, and a watermark read later
/// would let senders drop messages the image does not cover.
#[derive(Clone, Debug)]
struct CkptInFlight {
    clock: u64,
    watermarks: Vec<(Rank, u64)>,
    /// Arm timestamp for the upload-duration histogram.
    armed_ns: u64,
}

impl V2Engine {
    /// A fresh engine for the initial launch of `rank` in a world of
    /// `world` computing processes, with the default (lazy) batch policy.
    pub fn fresh(rank: Rank, world: u32) -> Self {
        Self::fresh_with_policy(rank, world, BatchPolicy::default())
    }

    /// A fresh engine with an explicit event-batching policy.
    pub fn fresh_with_policy(rank: Rank, world: u32, policy: BatchPolicy) -> Self {
        assert!(rank.0 < world, "rank {rank} out of world {world}");
        V2Engine {
            rank,
            world,
            clock: LogicalClock::new(),
            saved: SenderLog::new(),
            marks: Watermarks::new(),
            gate: PessimismGate::new(),
            mode: Mode::Normal,
            recv_buffer: VecDeque::new(),
            gated: VecDeque::new(),
            app_waiting_recv: false,
            app_waiting_probe: false,
            probes_since_delivery: 0,
            handshaken: None,
            adaptive_limit: Self::adaptive_start(policy),
            policy,
            pending_events: Vec::new(),
            ckpt_pending: false,
            ckpt_in_flight: None,
            metrics: Metrics::new(),
            outputs: VecDeque::new(),
            obs: Recorder::disabled(),
            timings: ProtocolTimings::new(),
            el_inflight: VecDeque::new(),
            el_replicas: 1,
            el_quorum: 1,
            el_replica_acked: Vec::new(),
            el_quorum_acked: 0,
            replay_started: None,
        }
    }

    /// Configure EL replication (applied by the runtime after
    /// [`fresh`](Self::fresh) or [`restore`](Self::restore), like
    /// [`set_batch_policy`](Self::set_batch_policy)). With
    /// `replicas <= 1` the engine keeps the unreplicated single-ack
    /// behavior byte-for-byte.
    pub fn set_el_replication(&mut self, replicas: u32, quorum: u32) {
        let replicas = replicas.max(1);
        assert!(
            quorum >= 1 && quorum <= replicas,
            "quorum {quorum} out of range for {replicas} replicas"
        );
        self.el_replicas = replicas;
        self.el_quorum = quorum;
        self.el_replica_acked = if replicas > 1 {
            vec![0; replicas as usize]
        } else {
            Vec::new()
        };
        self.el_quorum_acked = 0;
    }

    /// Attach a flight recorder (minted by the deployment's
    /// `RecorderHub`). The engine emits a structured record per protocol
    /// transition; with the default disabled recorder each emit is a
    /// single relaxed atomic load.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The attached flight recorder (engine and daemon share it).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Latency histograms accumulated by this incarnation.
    pub fn timings(&self) -> &ProtocolTimings {
        &self.timings
    }

    /// Rebuild an engine from a checkpoint image (`ROLLBACK()`), before
    /// [`begin_recovery`](Self::begin_recovery) is invoked.
    pub fn restore(snapshot: EngineSnapshot) -> Self {
        let mut e = Self::fresh(snapshot.rank, snapshot.world);
        e.clock = LogicalClock::from_value(snapshot.clock);
        e.marks = snapshot.watermarks;
        e.saved = snapshot.saved;
        e
    }

    /// Capture the engine half of a checkpoint image. Must only be called
    /// right after [`try_arm_checkpoint`](Self::try_arm_checkpoint)
    /// returned a clock (the quiescence window), before any other input.
    pub fn snapshot(&self) -> EngineSnapshot {
        debug_assert!(
            self.gate.is_open() && self.gated.is_empty(),
            "snapshot of a non-quiescent engine"
        );
        EngineSnapshot {
            rank: self.rank,
            world: self.world,
            clock: self.clock.value(),
            watermarks: self.marks.clone(),
            saved: self.saved.clone(),
        }
    }

    /// Enter recovery: install the event list downloaded from the EL
    /// (`DownloadEL(H_p)`), and emit `RESTART1` to every peer. Call this
    /// on a restored (or fresh, if no image existed) engine before any
    /// application activity.
    pub fn begin_recovery(&mut self, events: Vec<ReceptionEvent>) {
        self.metrics.recoveries += 1;
        let my_clock = self.clock.value();
        let events: Vec<ReceptionEvent> = events
            .into_iter()
            .filter(|e| e.receiver_clock > my_clock)
            .collect();
        self.obs.record(
            my_clock,
            ProtoEvent::RecoveryBegin {
                restored_clock: my_clock,
            },
        );
        self.gate.reset();
        // Unshipped events died with the crash; the deliveries they
        // described had no externally visible effect (the gate never
        // opened over them), so dropping them is exactly the pessimism
        // argument of §4.1. Likewise the ship→ack RTT queue: those
        // batches belong to the dead incarnation.
        self.pending_events.clear();
        self.el_inflight.clear();
        // The replicas' acked watermarks described the dead
        // incarnation's ledger view; the new incarnation re-earns them.
        self.el_replica_acked.iter_mut().for_each(|w| *w = 0);
        self.el_quorum_acked = 0;
        self.replay_started = Some((self.obs.now_ns(), self.metrics.replayed_deliveries));
        // Until a peer answers the handshake, its data traffic belongs to
        // the old, dead connection and must be discarded.
        self.handshaken = Some(std::collections::BTreeSet::new());
        self.obs
            .record(my_clock, ProtoEvent::Restart1 { rank: self.rank.0 });
        let restart1: Vec<(Rank, u64)> = self.peers().map(|q| (q, self.marks.hr(q))).collect();
        for (q, last_received) in restart1 {
            self.outputs.push_back(Output::Transmit {
                to: q,
                msg: PeerMsg::Restart1 { last_received },
            });
        }
        let plan = ReplayPlan::new(events);
        if plan.is_done() {
            self.mode = Mode::Normal;
            self.finish_replay_timing();
            self.metrics.replays_completed += 1;
            self.outputs.push_back(Output::ReplayComplete);
        } else {
            self.mode = Mode::Replay(plan);
        }
    }

    /// Record the replay-duration sample and the `ReplayDone` event.
    fn finish_replay_timing(&mut self) {
        if let Some((start_ns, replayed_before)) = self.replay_started.take() {
            let replay_ns = self.obs.now_ns().saturating_sub(start_ns);
            self.timings.replay.record(replay_ns);
            self.obs.record(
                self.clock.value(),
                ProtoEvent::ReplayDone {
                    replayed: self.metrics.replayed_deliveries - replayed_before,
                    replay_ns,
                },
            );
        }
    }

    /// Feed one input and process it to completion. Outputs accumulate and
    /// are collected with [`drain_outputs`](Self::drain_outputs).
    pub fn handle(&mut self, input: Input) -> Result<(), ReplayError> {
        match input {
            Input::AppSend { dst, payload } => self.on_app_send(dst, payload),
            Input::AppRecv => self.on_app_recv()?,
            Input::AppProbe => self.on_app_probe(),
            Input::Peer { from, msg } => self.on_peer(from, msg)?,
            Input::ElAck { up_to } => self.on_el_ack(up_to),
            Input::ElReplicaAck { replica, up_to } => self.on_el_replica_ack(replica, up_to),
            Input::CheckpointOrder => {
                self.ckpt_pending = true;
            }
            Input::CheckpointStored => self.on_checkpoint_stored(),
            Input::FlushEvents => self.flush_events(),
        }
        Ok(())
    }

    /// Drain the accumulated commands.
    pub fn drain_outputs(&mut self) -> Vec<Output> {
        self.outputs.drain(..).collect()
    }

    /// Activity counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// This engine's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn world(&self) -> u32 {
        self.world
    }

    /// Current logical clock value.
    pub fn clock(&self) -> u64 {
        self.clock.value()
    }

    /// Bytes currently held by the sender-based log (scheduler status).
    pub fn logged_bytes(&self) -> u64 {
        self.saved.bytes_held()
    }

    /// Whether the engine is replaying.
    pub fn is_replaying(&self) -> bool {
        matches!(self.mode, Mode::Replay(_))
    }

    /// True when the WAITLOGGED gate is open (diagnostics/tests).
    pub fn gate_open(&self) -> bool {
        self.gate.is_open()
    }

    /// The active event-batching policy.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Change the batching policy (e.g. after [`restore`](Self::restore),
    /// which always starts from the default). Immediately flushes if the
    /// new policy no longer tolerates the current backlog.
    pub fn set_batch_policy(&mut self, policy: BatchPolicy) {
        self.policy = policy;
        self.adaptive_limit = Self::adaptive_start(policy);
        match policy {
            BatchPolicy::Immediate => self.flush_events(),
            BatchPolicy::Lazy { max_events } => {
                if self.pending_events.len() >= max_events.max(1) {
                    self.flush_events();
                }
            }
            BatchPolicy::Adaptive { .. } => {
                if self.pending_events.len() >= self.adaptive_limit {
                    self.flush_events();
                }
            }
        }
    }

    /// Initial adaptive threshold: the conservative floor, widened only
    /// once live acks prove the EL keeps up.
    fn adaptive_start(policy: BatchPolicy) -> usize {
        match policy {
            BatchPolicy::Adaptive { min_events, .. } => min_events.max(1),
            _ => 1,
        }
    }

    /// The flush threshold currently in force: 1 under `Immediate`, the
    /// constant under `Lazy`, and the live adapted value under
    /// `Adaptive` (diagnostics and the `el_batching` bench).
    pub fn effective_batch_limit(&self) -> usize {
        match self.policy {
            BatchPolicy::Immediate => 1,
            BatchPolicy::Lazy { max_events } => max_events.max(1),
            BatchPolicy::Adaptive { .. } => self.adaptive_limit,
        }
    }

    /// Number of delivered receptions whose events have not been shipped
    /// to the event logger yet.
    pub fn pending_event_count(&self) -> usize {
        self.pending_events.len()
    }

    /// Ship every pending reception event as one batch. A no-op when the
    /// backlog is empty.
    pub fn flush_events(&mut self) {
        if self.pending_events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.pending_events);
        self.metrics.el_batches_sent += 1;
        self.metrics.el_events_batched += events.len() as u64;
        self.metrics.el_max_batch_events =
            self.metrics.el_max_batch_events.max(events.len() as u64);
        let from_clock = events.first().expect("non-empty batch").receiver_clock;
        let up_to = events.last().expect("non-empty batch").receiver_clock;
        self.el_inflight.push_back((up_to, self.obs.now_ns()));
        self.obs.record(
            self.clock.value(),
            ProtoEvent::ElShip {
                events: events.len() as u64,
                from_clock,
                up_to,
            },
        );
        self.outputs.push_back(Output::LogEvents(EventBatch {
            owner: self.rank,
            events,
        }));
    }

    fn peers(&self) -> impl Iterator<Item = Rank> + '_ {
        let me = self.rank;
        (0..self.world).map(Rank).filter(move |&q| q != me)
    }

    // --- send path -------------------------------------------------------

    fn on_app_send(&mut self, dst: Rank, payload: Payload) {
        assert_ne!(
            dst, self.rank,
            "self-sends must be short-circuited by the MPI layer"
        );
        let h = self.clock.tick();
        let bytes = payload.len() as u64;
        // SAVED is appended unconditionally (Lemma 1: re-executed sends
        // rebuild the log even when their transmission is suppressed).
        self.saved.append(dst, h, payload.clone());
        self.metrics.msgs_sent += 1;
        self.metrics.bytes_sent += bytes;
        if self.marks.should_transmit_to(dst, h) {
            self.marks.on_transmit_to(dst, h);
            // The disposition is decided by the same predicate
            // `send_data` uses, so the record matches what the gate
            // actually did with the payload.
            let disposition = if self.gate.is_open() && self.gated.is_empty() {
                SendDisposition::Wire
            } else {
                SendDisposition::Gated
            };
            self.obs.record(
                h,
                ProtoEvent::Send {
                    to: dst.0,
                    clock: h,
                    bytes,
                    disposition,
                },
            );
            let msg = PeerMsg::Data(DataMsg {
                id: MsgId::new(self.rank, h),
                dst,
                payload,
            });
            self.send_data(dst, msg);
        } else {
            self.metrics.transmissions_suppressed += 1;
            self.obs.record(
                h,
                ProtoEvent::Send {
                    to: dst.0,
                    clock: h,
                    bytes,
                    disposition: SendDisposition::Suppressed,
                },
            );
        }
    }

    /// Funnel a data transmission through the pessimism gate.
    fn send_data(&mut self, to: Rank, msg: PeerMsg) {
        debug_assert!(matches!(msg, PeerMsg::Data(_)));
        if self.gate.is_open() && self.gated.is_empty() {
            self.outputs.push_back(Output::Transmit { to, msg });
        } else {
            self.metrics.gate_deferred_sends += 1;
            // Adaptive narrowing: a queued send means the batch is
            // sitting on the events whose ack this send now waits for —
            // halve the threshold so future batches ship sooner.
            if let BatchPolicy::Adaptive { min_events, .. } = self.policy {
                self.adaptive_limit = (self.adaptive_limit / 2).max(min_events.max(1));
            }
            let deferred_clock = match &msg {
                PeerMsg::Data(d) => d.id.sender_clock,
                _ => 0,
            };
            self.gated.push_back((to, msg, self.obs.now_ns()));
            self.obs.record(
                self.clock.value(),
                ProtoEvent::GateDefer {
                    to: to.0,
                    clock: deferred_clock,
                    queued: self.gated.len() as u64,
                },
            );
            // The send now waits on the EL ack of the deliveries that shut
            // the gate; ship their events or the ack can never arrive.
            self.flush_events();
        }
    }

    fn flush_gated(&mut self) {
        if !self.gate.is_open() || self.gated.is_empty() {
            return;
        }
        let now = self.obs.now_ns();
        let mut released = 0u64;
        let mut oldest_wait = 0u64;
        while let Some((to, msg, enqueued_ns)) = self.gated.pop_front() {
            let waited = now.saturating_sub(enqueued_ns);
            self.metrics.gate_wait_ns += waited;
            self.timings.gate_wait.record(waited);
            oldest_wait = oldest_wait.max(waited);
            released += 1;
            self.outputs.push_back(Output::Transmit { to, msg });
        }
        self.obs.record(
            self.clock.value(),
            ProtoEvent::GateOpen {
                released,
                waited_ns: oldest_wait,
            },
        );
    }

    // --- receive path ----------------------------------------------------

    fn on_app_recv(&mut self) -> Result<(), ReplayError> {
        debug_assert!(!self.app_waiting_recv && !self.app_waiting_probe);
        self.app_waiting_recv = true;
        self.progress_delivery()
    }

    fn on_app_probe(&mut self) {
        debug_assert!(!self.app_waiting_recv && !self.app_waiting_probe);
        match &mut self.mode {
            Mode::Normal => {
                let pending = !self.recv_buffer.is_empty();
                if !pending {
                    self.probes_since_delivery += 1;
                    self.metrics.failed_probes += 1;
                }
                self.outputs.push_back(Output::ProbeAnswer(pending));
            }
            Mode::Replay(plan) => match plan.probe() {
                ProbeVerdict::ReplayNo => {
                    self.metrics.failed_probes += 1;
                    self.outputs.push_back(Output::ProbeAnswer(false));
                }
                ProbeVerdict::ReplayYes => self.outputs.push_back(Output::ProbeAnswer(true)),
                ProbeVerdict::Defer => self.app_waiting_probe = true,
            },
        }
    }

    /// Try to satisfy a blocked `AppRecv` (both modes) and finish the
    /// replay when it runs dry.
    fn progress_delivery(&mut self) -> Result<(), ReplayError> {
        if !self.app_waiting_recv {
            return Ok(());
        }
        match &mut self.mode {
            Mode::Normal => {
                if let Some((from, h, payload)) = self.recv_buffer.pop_front() {
                    self.app_waiting_recv = false;
                    self.deliver_normal(from, h, payload);
                }
                Ok(())
            }
            Mode::Replay(plan) => {
                match plan.try_deliver(self.clock.value())? {
                    Some((ev, payload)) => {
                        self.app_waiting_recv = false;
                        let rc = self.clock.tick();
                        debug_assert_eq!(rc, ev.receiver_clock);
                        let fresh = self.marks.on_delivery_from(ev.sender, ev.sender_clock);
                        debug_assert!(fresh, "replayed delivery below HR watermark");
                        self.metrics.msgs_delivered += 1;
                        self.metrics.replayed_deliveries += 1;
                        self.metrics.bytes_delivered += payload.len() as u64;
                        self.obs.record(
                            rc,
                            ProtoEvent::ReplayStep {
                                from: ev.sender.0,
                                sender_clock: ev.sender_clock,
                                receiver_clock: rc,
                            },
                        );
                        self.outputs.push_back(Output::Deliver {
                            from: ev.sender,
                            payload,
                        });
                        self.maybe_finish_replay();
                        Ok(())
                    }
                    None => Ok(()), // wait for the re-sent message
                }
            }
        }
    }

    /// Normal-mode delivery: tick, log the 4-field event, gate, deliver.
    fn deliver_normal(&mut self, from: Rank, sender_clock: u64, payload: Payload) {
        let rc = self.clock.tick();
        self.obs.record(
            rc,
            ProtoEvent::Deliver {
                from: from.0,
                sender_clock,
                receiver_clock: rc,
                replay: false,
            },
        );
        let hr_before = self.marks.hr(from);
        let fresh = self.marks.on_delivery_from(from, sender_clock);
        debug_assert!(
            fresh,
            "arrival filter let a duplicate through: rank {} delivering from {} clock {} but HR={} (rc {})",
            self.rank, from, sender_clock, hr_before, rc
        );
        let ev = ReceptionEvent {
            sender: from,
            sender_clock,
            receiver_clock: rc,
            probes: self.probes_since_delivery,
        };
        self.probes_since_delivery = 0;
        self.gate.on_scheduled(rc);
        self.metrics.events_logged += 1;
        self.metrics.msgs_delivered += 1;
        self.metrics.bytes_delivered += payload.len() as u64;
        self.pending_events.push(ev);
        let must_flush = match self.policy {
            BatchPolicy::Immediate => true,
            BatchPolicy::Lazy { max_events } => {
                // Flush at the size bound, or when transmissions are
                // already queued behind the gate: their release needs the
                // EL to ack this very event.
                self.pending_events.len() >= max_events.max(1) || !self.gated.is_empty()
            }
            BatchPolicy::Adaptive { .. } => {
                self.pending_events.len() >= self.adaptive_limit || !self.gated.is_empty()
            }
        };
        if must_flush {
            self.flush_events();
        }
        self.outputs.push_back(Output::Deliver { from, payload });
    }

    fn maybe_finish_replay(&mut self) {
        let Mode::Replay(plan) = &self.mode else {
            return;
        };
        if !plan.is_done() {
            return;
        }
        let Mode::Replay(plan) = std::mem::replace(&mut self.mode, Mode::Normal) else {
            unreachable!()
        };
        // Deliver parked futures per-pair in sender-clock order (any
        // cross-pair interleaving is a legal fresh nondeterministic
        // order; within a pair MPI non-overtaking requires clock order).
        let mut futures = plan.into_future_arrivals();
        futures.sort_by_key(|(id, _)| (id.sender, id.sender_clock));
        for (id, payload) in futures {
            // A "future" at or below HR is no future at all: it duplicates
            // a delivery the logged history already contains (a peer's
            // later RESTART resend round can re-offer messages whose
            // logged position was consumed, or cover clocks the history
            // recorded under different positions). Exactly-once demands
            // dropping it — parking it would push a below-watermark
            // message into the live receive buffer.
            if id.sender_clock <= self.marks.hr(id.sender) {
                self.metrics.duplicates_dropped += 1;
                self.obs.record(
                    self.clock.value(),
                    ProtoEvent::DuplicateDropped {
                        from: id.sender.0,
                        sender_clock: id.sender_clock,
                    },
                );
                continue;
            }
            self.recv_buffer
                .push_back((id.sender, id.sender_clock, payload));
        }
        // Replay completion is a forced-flush point (normally a no-op:
        // replayed deliveries are never re-logged).
        self.flush_events();
        self.finish_replay_timing();
        self.metrics.replays_completed += 1;
        self.outputs.push_back(Output::ReplayComplete);
    }

    // --- peer messages ---------------------------------------------------

    fn on_peer(&mut self, from: Rank, msg: PeerMsg) -> Result<(), ReplayError> {
        match msg {
            PeerMsg::Data(data) => {
                if let Some(hs) = &self.handshaken {
                    if !hs.contains(&from) {
                        // Old-connection leftover racing our recovery.
                        self.metrics.duplicates_dropped += 1;
                        self.obs.record(
                            self.clock.value(),
                            ProtoEvent::DuplicateDropped {
                                from: from.0,
                                sender_clock: data.id.sender_clock,
                            },
                        );
                        return Ok(());
                    }
                }
                self.on_peer_data(from, data)
            }
            PeerMsg::Restart1 { last_received } => {
                if let Some(hs) = &mut self.handshaken {
                    hs.insert(from);
                }
                self.on_restart_watermark(from, last_received, true);
                Ok(())
            }
            PeerMsg::Restart2 { last_received } => {
                if let Some(hs) = &mut self.handshaken {
                    hs.insert(from);
                }
                self.on_restart_watermark(from, last_received, false);
                Ok(())
            }
            PeerMsg::CkptNotify { watermark } => {
                let freed = self.saved.collect(from, watermark);
                self.metrics.gc_bytes_freed += freed;
                self.obs.record(
                    self.clock.value(),
                    ProtoEvent::CkptGc {
                        peer: from.0,
                        bytes_freed: freed,
                    },
                );
                Ok(())
            }
        }
    }

    fn on_peer_data(&mut self, from: Rank, data: DataMsg) -> Result<(), ReplayError> {
        debug_assert_eq!(data.id.sender, from, "spoofed sender");
        debug_assert_eq!(data.dst, self.rank, "misrouted message");
        let h = data.id.sender_clock;
        match &mut self.mode {
            Mode::Normal => {
                // Exactly-once filter: delivered clocks are below `HR`;
                // arrived-but-undelivered ones sit in the buffer. Checked
                // by membership, not watermark — see `recv_buffer`.
                let already_delivered = self.marks.is_duplicate_from(from, h);
                let already_buffered = self
                    .recv_buffer
                    .iter()
                    .any(|(q, hq, _)| *q == from && *hq == h);
                if already_delivered || already_buffered {
                    self.metrics.duplicates_dropped += 1;
                    self.obs.record(
                        self.clock.value(),
                        ProtoEvent::DuplicateDropped {
                            from: from.0,
                            sender_clock: h,
                        },
                    );
                    return Ok(());
                }
                // Insert keeping the per-sender clock order: a RESTART
                // resend can legitimately arrive behind an in-flight copy
                // of a *later* message from the peer's previous view.
                let at = self
                    .recv_buffer
                    .iter()
                    .position(|(q, hq, _)| *q == from && *hq > h)
                    .unwrap_or(self.recv_buffer.len());
                self.recv_buffer.insert(at, (from, h, data.payload));
                // A blocked probe can only exist in replay mode; a blocked
                // recv may now complete.
                self.progress_delivery()
            }
            Mode::Replay(plan) => {
                if self.marks.is_duplicate_from(from, h) {
                    self.metrics.duplicates_dropped += 1;
                    self.obs.record(
                        self.clock.value(),
                        ProtoEvent::DuplicateDropped {
                            from: from.0,
                            sender_clock: h,
                        },
                    );
                    return Ok(());
                }
                match plan.offer(data.id, data.payload) {
                    Offer::Stored => {
                        if self.app_waiting_probe {
                            match plan.probe() {
                                ProbeVerdict::ReplayYes => {
                                    self.app_waiting_probe = false;
                                    self.outputs.push_back(Output::ProbeAnswer(true));
                                }
                                ProbeVerdict::ReplayNo => {
                                    // Cannot happen: Defer only occurs past
                                    // the probe budget.
                                    self.app_waiting_probe = false;
                                    self.metrics.failed_probes += 1;
                                    self.outputs.push_back(Output::ProbeAnswer(false));
                                }
                                ProbeVerdict::Defer => {}
                            }
                        }
                        self.progress_delivery()
                    }
                    Offer::Future => Ok(()),
                }
            }
        }
    }

    /// Common half of the `RESTART1` / `RESTART2` rules: set `HS` from the
    /// peer's watermark and re-send newer saved messages; `RESTART1`
    /// additionally answers with `RESTART2`.
    fn on_restart_watermark(&mut self, from: Rank, last_received: u64, reply: bool) {
        self.marks.set_hs_from_restart(from, last_received);
        self.obs.record(
            self.clock.value(),
            ProtoEvent::Restart2 {
                peer: from.0,
                watermark: last_received,
            },
        );
        if reply {
            let mine = self.marks.hr(from);
            self.outputs.push_back(Output::Transmit {
                to: from,
                msg: PeerMsg::Restart2 {
                    last_received: mine,
                },
            });
        }
        // Purge transmissions to the restarting peer still queued behind
        // the gate: they were addressed to its dead incarnation, and
        // leaving them in place would emit them *ahead* of the (older)
        // SAVED resends queued below, breaking the ascending per-peer
        // wire order the receiver's replay relies on. Every purged
        // payload the peer still needs is covered by `resend_after`
        // (emission appends to SAVED before gating); purged clocks at or
        // below `last_received` were already received and need nothing.
        self.gated.retain(|(to, _, _)| *to != from);
        let resends: Vec<_> = self.saved.resend_after(from, last_received).collect();
        for s in resends {
            self.marks.on_transmit_to(from, s.sender_clock);
            self.metrics.retransmissions += 1;
            let msg = PeerMsg::Data(DataMsg {
                id: MsgId::new(self.rank, s.sender_clock),
                dst: from,
                payload: s.payload,
            });
            self.send_data(from, msg);
        }
    }

    /// The hosting daemon could not hand a data transmission at our clock
    /// `h` to `to`: the peer's incarnation is gone and the message died
    /// with its mailbox. Retract the optimistic `HS` advance recorded at
    /// emission time, or a checkpoint of the inflated mark would suppress
    /// the healing re-sends across our own later restart (see
    /// [`Watermarks::rollback_hs_below`]).
    pub fn on_transmit_dropped(&mut self, to: Rank, h: u64) {
        self.marks.rollback_hs_below(to, h);
    }

    // --- event logger ----------------------------------------------------

    fn on_el_ack(&mut self, up_to: u64) {
        self.metrics.el_acks_received += 1;
        // Retire every shipped batch the (possibly coalesced,
        // high-watermark) ack covers, crediting each with its own
        // ship→ack round-trip.
        let now = self.obs.now_ns();
        let mut batches_retired = 0u64;
        let mut oldest_rtt = 0u64;
        while let Some(&(batch_up_to, shipped_ns)) = self.el_inflight.front() {
            if batch_up_to > up_to {
                break;
            }
            self.el_inflight.pop_front();
            let rtt = now.saturating_sub(shipped_ns);
            self.metrics.el_batches_acked += 1;
            self.metrics.el_ack_rtt_ns += rtt;
            self.timings.el_ack_rtt.record(rtt);
            oldest_rtt = oldest_rtt.max(rtt);
            batches_retired += 1;
        }
        self.obs.record(
            self.clock.value(),
            ProtoEvent::ElAck {
                up_to,
                batches_retired,
                rtt_ns: oldest_rtt,
            },
        );
        // Adaptive widening: the EL is demonstrably keeping up — every
        // released send so far waited under budget at the p99 — so a
        // bigger batch amortizes the next RTT at no gate-latency cost.
        // (A gate-wait histogram with no samples means no send has ever
        // waited: also under budget.)
        if let BatchPolicy::Adaptive {
            max_events,
            gate_budget_ns,
            ..
        } = self.policy
        {
            if self.timings.gate_wait.quantile(0.99) <= gate_budget_ns {
                self.adaptive_limit = (self.adaptive_limit * 2).min(max_events.max(1));
            }
        }
        if self.gate.on_ack(up_to) {
            self.flush_gated();
        }
    }

    /// One replica of this rank's shard acked. The pessimism gate may
    /// only trust a receiver clock once a quorum of replicas has stored
    /// it — the Q-th largest per-replica watermark — so a single
    /// replica crash neither loses a gate-released dependency nor
    /// stalls the gate (the surviving majority keeps acking).
    fn on_el_replica_ack(&mut self, replica: u32, up_to: u64) {
        if self.el_replicas <= 1 {
            // Unreplicated: the replica ack *is* the ack.
            self.on_el_ack(up_to);
            return;
        }
        self.metrics.el_acks_received += 1;
        self.obs.record(
            self.clock.value(),
            ProtoEvent::ElReplicaAck {
                // The engine only ever talks to its own shard; the
                // hosting daemon rewrites the shard index when it
                // forwards dumps, so 0 here means "my shard".
                shard: 0,
                replica,
                up_to,
            },
        );
        let Some(slot) = self.el_replica_acked.get_mut(replica as usize) else {
            return;
        };
        // Monotone: a reordered stale ack may not regress the replica.
        *slot = (*slot).max(up_to);
        let mut sorted = self.el_replica_acked.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let quorum_w = sorted[(self.el_quorum as usize - 1).min(sorted.len() - 1)];
        if quorum_w > self.el_quorum_acked {
            self.el_quorum_acked = quorum_w;
            // Feed the quorum watermark through the single-ack path:
            // batch retirement, RTT accounting, adaptive widening and
            // the gate all see exactly one (coalesced) ack per quorum
            // advance. The extra el_acks_received bump above keeps the
            // per-replica traffic visible in the metrics.
            self.metrics.el_acks_received -= 1;
            self.on_el_ack(quorum_w);
        }
    }

    // --- checkpointing ---------------------------------------------------

    /// Attempt to start a pending checkpoint *now*. Called by the hosting
    /// daemon when the MPI process polls a checkpoint site — the quiescent
    /// point of our cooperative (Condor-substituting) checkpointing. Arms
    /// only when a checkpoint was ordered, none is in flight, and the
    /// protocol is quiescent (live mode, open gate, no queued
    /// transmissions). Returns the image clock; the caller must then call
    /// [`snapshot`](Self::snapshot) immediately, before feeding any other
    /// input.
    pub fn try_arm_checkpoint(&mut self) -> Option<u64> {
        if !self.ckpt_pending || self.ckpt_in_flight.is_some() {
            return None;
        }
        // An ordered checkpoint forces the flush: the quiescence condition
        // below needs the gate re-openable, and the gate cannot reopen
        // while the events it waits on sit unshipped.
        self.flush_events();
        if self.is_replaying() || !self.gate.is_open() || !self.gated.is_empty() {
            return None;
        }
        self.ckpt_pending = false;
        let clock = self.clock.value();
        let watermarks: Vec<(Rank, u64)> = self.peers().map(|q| (q, self.marks.hr(q))).collect();
        self.obs.record(
            clock,
            ProtoEvent::CkptBegin {
                seq: self.metrics.checkpoints_taken + 1,
                bytes: self.saved.bytes_held(),
            },
        );
        self.ckpt_in_flight = Some(CkptInFlight {
            clock,
            watermarks,
            armed_ns: self.obs.now_ns(),
        });
        Some(clock)
    }

    fn on_checkpoint_stored(&mut self) {
        let Some(CkptInFlight {
            clock,
            watermarks,
            armed_ns,
        }) = self.ckpt_in_flight.take()
        else {
            return;
        };
        self.metrics.checkpoints_taken += 1;
        let store_ns = self.obs.now_ns().saturating_sub(armed_ns);
        self.timings.ckpt_store.record(store_ns);
        self.obs.record(
            self.clock.value(),
            ProtoEvent::CkptCommit {
                seq: self.metrics.checkpoints_taken,
                store_ns,
            },
        );
        // §4.6.1: notify every other daemon so they can garbage-collect
        // the messages we received before this checkpoint — "before" being
        // the snapshot instant, not the (later) durability ack.
        for (q, watermark) in watermarks {
            self.outputs.push_back(Output::Transmit {
                to: q,
                msg: PeerMsg::CkptNotify { watermark },
            });
        }
        self.outputs.push_back(Output::ElTruncate { up_to: clock });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(n: u8) -> Payload {
        Payload::from_vec(vec![n])
    }

    /// Collect outputs, asserting the pessimism invariant on every data
    /// transmission.
    fn outs(e: &mut V2Engine) -> Vec<Output> {
        e.drain_outputs()
    }

    fn data_out(outs: &[Output]) -> Vec<(Rank, MsgId, Payload)> {
        outs.iter()
            .filter_map(|o| match o {
                Output::Transmit {
                    to,
                    msg: PeerMsg::Data(d),
                } => Some((*to, d.id, d.payload.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn send_emits_and_saves() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(7),
        })
        .unwrap();
        let o = outs(&mut e);
        let d = data_out(&o);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, MsgId::new(Rank(0), 1));
        assert_eq!(e.logged_bytes(), 1);
        assert_eq!(e.clock(), 1);
    }

    #[test]
    fn delivery_logs_event_then_gates_next_send() {
        // Immediate policy: the eager one-round-trip-per-message protocol.
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Immediate);
        // A message arrives; the app receives it.
        e.handle(Input::AppRecv).unwrap();
        e.handle(Input::Peer {
            from: Rank(0),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(0), 1),
                dst: Rank(1),
                payload: pl(1),
            }),
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(|x| matches!(x, Output::Deliver { .. })));
        let ev = o
            .iter()
            .find_map(|x| match x {
                Output::LogEvents(b) => Some(b.events[0]),
                _ => None,
            })
            .expect("event logged");
        assert_eq!(ev.sender, Rank(0));
        assert_eq!(ev.sender_clock, 1);
        assert_eq!(ev.receiver_clock, 1);
        assert_eq!(ev.probes, 0);
        assert!(!e.gate_open());

        // The app now sends: the transmission must wait for the EL ack.
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(2),
        })
        .unwrap();
        assert!(
            data_out(&outs(&mut e)).is_empty(),
            "payload leaked past a closed gate"
        );
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        let d = data_out(&outs(&mut e));
        assert_eq!(d.len(), 1);
        assert_eq!(e.metrics().gate_deferred_sends, 1);
    }

    #[test]
    fn probes_counted_and_attached_to_next_event() {
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Immediate);
        e.handle(Input::AppProbe).unwrap();
        assert_eq!(outs(&mut e), vec![Output::ProbeAnswer(false)]);
        e.handle(Input::AppProbe).unwrap();
        outs(&mut e);
        e.handle(Input::Peer {
            from: Rank(0),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(0), 1),
                dst: Rank(1),
                payload: pl(1),
            }),
        })
        .unwrap();
        e.handle(Input::AppProbe).unwrap();
        assert_eq!(outs(&mut e), vec![Output::ProbeAnswer(true)]);
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        let ev = o
            .iter()
            .find_map(|x| match x {
                Output::LogEvents(b) => Some(b.events[0]),
                _ => None,
            })
            .unwrap();
        assert_eq!(ev.probes, 2, "only unsuccessful probes count");
    }

    #[test]
    fn duplicate_arrivals_dropped() {
        let mut e = V2Engine::fresh(Rank(1), 2);
        let m = PeerMsg::Data(DataMsg {
            id: MsgId::new(Rank(0), 1),
            dst: Rank(1),
            payload: pl(1),
        });
        e.handle(Input::Peer {
            from: Rank(0),
            msg: m.clone(),
        })
        .unwrap();
        e.handle(Input::Peer {
            from: Rank(0),
            msg: m,
        })
        .unwrap();
        assert_eq!(e.metrics().duplicates_dropped, 1);
        // Only one delivery possible.
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        assert_eq!(
            o.iter()
                .filter(|x| matches!(x, Output::Deliver { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn restart1_triggers_restart2_and_resends() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        for i in 0..3 {
            e.handle(Input::AppSend {
                dst: Rank(1),
                payload: pl(i),
            })
            .unwrap();
        }
        outs(&mut e);
        // Peer restarts having received only clock 1.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart1 { last_received: 1 },
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(
            |x| matches!(x, Output::Transmit { to, msg: PeerMsg::Restart2 { last_received: 0 } } if *to == Rank(1))
        ));
        let d = data_out(&o);
        assert_eq!(d.len(), 2, "clocks 2 and 3 re-sent");
        assert_eq!(d[0].1.sender_clock, 2);
        assert_eq!(d[1].1.sender_clock, 3);
        assert_eq!(e.metrics().retransmissions, 2);
    }

    #[test]
    fn resends_respect_the_gate() {
        let mut e = V2Engine::fresh(Rank(0), 3);
        // Deliver something so the gate closes.
        e.handle(Input::Peer {
            from: Rank(2),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(2), 1),
                dst: Rank(0),
                payload: pl(9),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        outs(&mut e);
        assert!(!e.gate_open());
        // An earlier send exists in SAVED.
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(1),
        })
        .unwrap();
        outs(&mut e);
        // Peer 1 restarts: the resend must NOT leak while the gate is shut.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart1 { last_received: 0 },
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(data_out(&o).is_empty(), "resend leaked past a closed gate");
        // RESTART2 itself (control) is allowed through.
        assert!(o.iter().any(|x| matches!(
            x,
            Output::Transmit {
                msg: PeerMsg::Restart2 { .. },
                ..
            }
        )));
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
    }

    #[test]
    fn suppressed_reexecuted_sends_still_rebuild_saved() {
        let snap = EngineSnapshot {
            rank: Rank(0),
            world: 2,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut e = V2Engine::restore(snap);
        e.begin_recovery(vec![]);
        outs(&mut e);
        // Peer already received our clock-1 message (its RESTART2 says so).
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 1 },
        })
        .unwrap();
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(1),
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(
            data_out(&o).is_empty(),
            "suppressed re-send must not transmit"
        );
        assert_eq!(e.metrics().transmissions_suppressed, 1);
        assert!(
            e.saved.get(Rank(1), 1).is_some(),
            "SAVED must be rebuilt (Lemma 1)"
        );
        // The next (new) send transmits normally.
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(2),
        })
        .unwrap();
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
    }

    #[test]
    fn replay_forces_logged_order() {
        // Restarted process logged: (r1,c1)@rc1 then (r2,c1)@rc2.
        let snap = EngineSnapshot {
            rank: Rank(0),
            world: 3,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut e = V2Engine::restore(snap);
        e.begin_recovery(vec![
            ReceptionEvent {
                sender: Rank(1),
                sender_clock: 1,
                receiver_clock: 1,
                probes: 0,
            },
            ReceptionEvent {
                sender: Rank(2),
                sender_clock: 1,
                receiver_clock: 2,
                probes: 0,
            },
        ]);
        let o = outs(&mut e);
        // RESTART1 broadcast to both peers.
        assert_eq!(
            o.iter()
                .filter(|x| matches!(
                    x,
                    Output::Transmit {
                        msg: PeerMsg::Restart1 { .. },
                        ..
                    }
                ))
                .count(),
            2
        );
        assert!(e.is_replaying());
        // Peers answer the handshake before any data (connection
        // establishment).
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        e.handle(Input::Peer {
            from: Rank(2),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        // Peer 2's message arrives first but must NOT be delivered first.
        e.handle(Input::Peer {
            from: Rank(2),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(2), 1),
                dst: Rank(0),
                payload: pl(2),
            }),
        })
        .unwrap();
        assert!(outs(&mut e)
            .iter()
            .all(|x| !matches!(x, Output::Deliver { .. })));
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(matches!(&o[..], [Output::Deliver { from, .. }] if *from == Rank(1)));
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        assert!(o
            .iter()
            .any(|x| matches!(x, Output::Deliver { from, .. } if *from == Rank(2))));
        assert!(o.iter().any(|x| matches!(x, Output::ReplayComplete)));
        assert!(!e.is_replaying());
        assert_eq!(e.metrics().replayed_deliveries, 2);
        // Replayed deliveries are NOT re-logged.
        assert_eq!(e.metrics().events_logged, 0);
    }

    #[test]
    fn future_arrivals_delivered_after_replay() {
        let snap = EngineSnapshot {
            rank: Rank(0),
            world: 2,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut e = V2Engine::restore(snap);
        e.set_batch_policy(BatchPolicy::Immediate);
        e.begin_recovery(vec![ReceptionEvent {
            sender: Rank(1),
            sender_clock: 1,
            receiver_clock: 1,
            probes: 0,
        }]);
        outs(&mut e);
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        // An unlogged (post-crash-point) message arrives during replay.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 5),
                dst: Rank(0),
                payload: pl(5),
            }),
        })
        .unwrap();
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(|x| matches!(x, Output::Deliver { .. })));
        assert!(o.iter().any(|x| matches!(x, Output::ReplayComplete)));
        // The future message is now a fresh, logged reception.
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(|x| matches!(x, Output::Deliver { .. })));
        assert!(o.iter().any(|x| matches!(x, Output::LogEvents(_))));
        assert_eq!(e.clock(), 2);
    }

    #[test]
    fn checkpoint_waits_for_quiescence_then_notifies() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        // Close the gate with a delivery.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        outs(&mut e);
        e.handle(Input::CheckpointOrder).unwrap();
        assert_eq!(
            e.try_arm_checkpoint(),
            None,
            "checkpoint must wait for the ack"
        );
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        outs(&mut e);
        assert_eq!(e.try_arm_checkpoint(), Some(1));
        assert_eq!(e.try_arm_checkpoint(), None, "already in flight");
        let snap = e.snapshot();
        assert_eq!(snap.clock, 1);
        e.handle(Input::CheckpointStored).unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(
            |x| matches!(x, Output::Transmit { to, msg: PeerMsg::CkptNotify { watermark: 1 } } if *to == Rank(1))
        ));
        assert!(o
            .iter()
            .any(|x| matches!(x, Output::ElTruncate { up_to: 1 })));
        assert_eq!(e.metrics().checkpoints_taken, 1);
    }

    #[test]
    fn gc_watermark_captured_at_snapshot_not_at_store_ack() {
        // Regression: deliveries continuing while the image transfer is in
        // flight must not inflate the GC watermark past what the image
        // covers - or a later restart from that image would need messages
        // the senders already dropped.
        let mut e = V2Engine::fresh(Rank(0), 2);
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        e.handle(Input::CheckpointOrder).unwrap();
        assert_eq!(e.try_arm_checkpoint(), Some(1));
        let _snap = e.snapshot();
        // While the image is in flight, another delivery advances HR.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 5),
                dst: Rank(0),
                payload: pl(5),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        outs(&mut e);
        // The stored ack arrives: the notify must carry HR=1 (snapshot
        // instant), not HR=5.
        e.handle(Input::CheckpointStored).unwrap();
        let o = outs(&mut e);
        assert!(
            o.iter().any(|x| matches!(
                x,
                Output::Transmit {
                    msg: PeerMsg::CkptNotify { watermark: 1 },
                    ..
                }
            )),
            "watermark must reflect the snapshot instant: {o:?}"
        );
    }

    #[test]
    fn ckpt_notify_garbage_collects_sender_log() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        for i in 0..4 {
            e.handle(Input::AppSend {
                dst: Rank(1),
                payload: Payload::filled(i, 100),
            })
            .unwrap();
        }
        outs(&mut e);
        assert_eq!(e.logged_bytes(), 400);
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::CkptNotify { watermark: 2 },
        })
        .unwrap();
        assert_eq!(e.logged_bytes(), 200);
        assert_eq!(e.metrics().gc_bytes_freed, 200);
    }

    #[test]
    fn probe_counts_replay_with_deferral() {
        // Original run: probe fails twice, then the message arrives and a
        // recv follows. The replay must answer exactly two probes `false`
        // (even holding the answer if the re-sent payload lags) and then
        // deliver.
        let snap = EngineSnapshot {
            rank: Rank(0),
            world: 2,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut e = V2Engine::restore(snap);
        e.begin_recovery(vec![ReceptionEvent {
            sender: Rank(1),
            sender_clock: 1,
            receiver_clock: 1,
            probes: 2,
        }]);
        outs(&mut e);
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        // First two probes answered false immediately.
        e.handle(Input::AppProbe).unwrap();
        assert_eq!(outs(&mut e), vec![Output::ProbeAnswer(false)]);
        e.handle(Input::AppProbe).unwrap();
        assert_eq!(outs(&mut e), vec![Output::ProbeAnswer(false)]);
        // Third probe: the original succeeded, but the payload is not
        // here yet — the answer is HELD, not falsified.
        e.handle(Input::AppProbe).unwrap();
        assert!(outs(&mut e).is_empty(), "probe answer must be deferred");
        // The re-sent payload arrives: the held probe answers true.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        assert_eq!(outs(&mut e), vec![Output::ProbeAnswer(true)]);
        e.handle(Input::AppRecv).unwrap();
        let o = outs(&mut e);
        assert!(o.iter().any(|x| matches!(x, Output::Deliver { .. })));
        assert!(o.iter().any(|x| matches!(x, Output::ReplayComplete)));
    }

    #[test]
    fn checkpoint_cannot_arm_during_replay() {
        let snap = EngineSnapshot {
            rank: Rank(0),
            world: 2,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut e = V2Engine::restore(snap);
        e.begin_recovery(vec![ReceptionEvent {
            sender: Rank(1),
            sender_clock: 1,
            receiver_clock: 1,
            probes: 0,
        }]);
        outs(&mut e);
        e.handle(Input::CheckpointOrder).unwrap();
        assert_eq!(
            e.try_arm_checkpoint(),
            None,
            "no checkpoints while replaying"
        );
        // Finish the replay; now it can arm.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(1),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        outs(&mut e);
        assert_eq!(e.try_arm_checkpoint(), Some(1));
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_protocol_state() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(1),
        })
        .unwrap();
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 1),
                dst: Rank(0),
                payload: pl(2),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        e.handle(Input::ElAck { up_to: 2 }).unwrap();
        outs(&mut e);
        let snap = e.snapshot();
        let r = V2Engine::restore(snap);
        assert_eq!(r.clock(), e.clock());
        assert_eq!(r.logged_bytes(), e.logged_bytes());
        assert_eq!(r.marks.hr(Rank(1)), e.marks.hr(Rank(1)));
        assert_eq!(r.marks.hs(Rank(1)), e.marks.hs(Rank(1)));
    }

    fn feed_data(e: &mut V2Engine, from: Rank, h: u64) {
        e.handle(Input::Peer {
            from,
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(from, h),
                dst: e.rank(),
                payload: pl(h as u8),
            }),
        })
        .unwrap();
    }

    #[test]
    fn lazy_batching_defers_log_until_send_gates() {
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Lazy { max_events: 8 });
        for h in 1..=2u64 {
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(0), h);
        }
        let o = outs(&mut e);
        assert!(
            o.iter().all(|x| !matches!(x, Output::LogEvents(_))),
            "lazy policy must not ship per delivery"
        );
        assert_eq!(e.pending_event_count(), 2);
        assert!(!e.gate_open(), "the gate still closes at delivery");

        // A send queues behind the gate: the batch must flush, the payload
        // must not.
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(9),
        })
        .unwrap();
        let o = outs(&mut e);
        assert!(data_out(&o).is_empty(), "payload leaked past a closed gate");
        let batch = o
            .iter()
            .find_map(|x| match x {
                Output::LogEvents(b) => Some(b.clone()),
                _ => None,
            })
            .expect("gated send must force a flush");
        assert_eq!(batch.events.len(), 2);
        assert!(batch.is_ordered());
        assert_eq!(e.pending_event_count(), 0);

        // One coalesced ack covers both events and releases the send.
        e.handle(Input::ElAck { up_to: 2 }).unwrap();
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
        let m = e.metrics();
        assert_eq!(m.el_batches_sent, 1);
        assert_eq!(m.el_events_batched, 2);
        assert_eq!(m.el_max_batch_events, 2);
        assert_eq!(m.el_acks_received, 1);
    }

    #[test]
    fn replica_acks_open_gate_only_at_quorum() {
        let mut e = V2Engine::fresh(Rank(1), 2);
        e.set_el_replication(3, 2);
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(9),
        })
        .unwrap();
        assert!(data_out(&outs(&mut e)).is_empty(), "gate closed: no data");

        // One replica ack is not a quorum: the gate must stay shut.
        e.handle(Input::ElReplicaAck {
            replica: 0,
            up_to: 1,
        })
        .unwrap();
        assert!(!e.gate_open());
        assert!(data_out(&outs(&mut e)).is_empty());
        assert_eq!(e.metrics().el_batches_acked, 0);

        // The second replica completes the quorum and releases the send.
        e.handle(Input::ElReplicaAck {
            replica: 1,
            up_to: 1,
        })
        .unwrap();
        assert!(e.gate_open());
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
        let m = e.metrics();
        assert_eq!(m.el_acks_received, 2, "each replica ack counts once");
        assert_eq!(m.el_batches_acked, 1, "the batch retires exactly once");

        // The straggler's ack of the same watermark must not re-open or
        // re-retire anything.
        e.handle(Input::ElReplicaAck {
            replica: 2,
            up_to: 1,
        })
        .unwrap();
        let m = e.metrics();
        assert_eq!(m.el_acks_received, 3);
        assert_eq!(m.el_batches_acked, 1);
    }

    #[test]
    fn replica_ack_is_plain_ack_when_unreplicated() {
        // Without set_el_replication the replica-addressed ack must be
        // byte-identical to Input::ElAck — the R=1 deployment cannot
        // change behavior.
        let mut e = V2Engine::fresh(Rank(1), 2);
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(9),
        })
        .unwrap();
        outs(&mut e);
        e.handle(Input::ElReplicaAck {
            replica: 0,
            up_to: 1,
        })
        .unwrap();
        assert!(e.gate_open());
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
        assert_eq!(e.metrics().el_acks_received, 1);
        assert_eq!(e.metrics().el_batches_acked, 1);
    }

    #[test]
    fn stale_replica_ack_cannot_regress_the_quorum() {
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Immediate);
        e.set_el_replication(2, 2);
        for h in 1..=2u64 {
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(0), h);
        }
        outs(&mut e);
        e.handle(Input::ElReplicaAck {
            replica: 0,
            up_to: 2,
        })
        .unwrap();
        // A reordered stale ack from the same replica...
        e.handle(Input::ElReplicaAck {
            replica: 0,
            up_to: 1,
        })
        .unwrap();
        // ...must not have clobbered its watermark: replica 1 at 2
        // completes the quorum at 2, retiring both shipped batches.
        e.handle(Input::ElReplicaAck {
            replica: 1,
            up_to: 2,
        })
        .unwrap();
        assert!(e.gate_open());
        assert_eq!(e.metrics().el_batches_acked, 2);
    }

    #[test]
    fn recovery_resets_replica_quorum_state() {
        let mut e = V2Engine::fresh(Rank(1), 2);
        e.set_el_replication(2, 2);
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        for r in 0..2 {
            e.handle(Input::ElReplicaAck {
                replica: r,
                up_to: 1,
            })
            .unwrap();
        }
        assert!(e.gate_open());
        outs(&mut e);

        // Restart: the new incarnation re-earns its quorum from zero —
        // a fresh delivery at the same clock gates until both replicas
        // re-ack it.
        let snap = EngineSnapshot {
            rank: Rank(1),
            world: 2,
            clock: 0,
            watermarks: Watermarks::new(),
            saved: SenderLog::new(),
        };
        let mut r = V2Engine::restore(snap);
        r.set_el_replication(2, 2);
        r.begin_recovery(vec![]);
        outs(&mut r);
        // Re-establish the peer connection so fresh data is accepted.
        r.handle(Input::Peer {
            from: Rank(0),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        outs(&mut r);
        r.handle(Input::AppRecv).unwrap();
        feed_data(&mut r, Rank(0), 1);
        assert!(!r.gate_open());
        r.handle(Input::ElReplicaAck {
            replica: 0,
            up_to: 1,
        })
        .unwrap();
        assert!(!r.gate_open(), "one ack is not a quorum after restart");
        r.handle(Input::ElReplicaAck {
            replica: 1,
            up_to: 1,
        })
        .unwrap();
        assert!(r.gate_open());
    }

    #[test]
    fn lazy_batch_flushes_at_size_threshold() {
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Lazy { max_events: 3 });
        for h in 1..=3u64 {
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(0), h);
        }
        let o = outs(&mut e);
        let batches: Vec<&EventBatch> = o
            .iter()
            .filter_map(|x| match x {
                Output::LogEvents(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(batches.len(), 1, "exactly one flush at the threshold");
        assert_eq!(batches[0].events.len(), 3);
        assert_eq!(e.pending_event_count(), 0);
        assert_eq!(e.metrics().el_max_batch_events, 3);
    }

    #[test]
    fn adaptive_policy_widens_on_fast_acks_and_narrows_on_gate_deferral() {
        let mut e = V2Engine::fresh_with_policy(
            Rank(1),
            2,
            BatchPolicy::Adaptive {
                min_events: 1,
                max_events: 8,
                gate_budget_ns: u64::MAX,
            },
        );
        assert_eq!(e.effective_batch_limit(), 1, "starts at the floor");

        // At the floor the policy behaves like Immediate: one delivery,
        // one flush.
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        assert_eq!(e.pending_event_count(), 0);
        outs(&mut e);

        // Every under-budget ack doubles the threshold, up to the cap.
        for expect in [2usize, 4, 8, 8] {
            let up_to = e.clock();
            e.handle(Input::ElAck { up_to }).unwrap();
            assert_eq!(e.effective_batch_limit(), expect);
            outs(&mut e);
        }

        // With the widened limit, a burst of deliveries accumulates...
        for h in 2..=3u64 {
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(0), h);
        }
        assert_eq!(e.pending_event_count(), 2);
        // ...until a send queues behind the gate: the backlog flushes and
        // the threshold halves.
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(9),
        })
        .unwrap();
        assert_eq!(e.pending_event_count(), 0);
        assert_eq!(e.effective_batch_limit(), 4, "deferral narrows");
        assert_eq!(e.metrics().gate_deferred_sends, 1);
        outs(&mut e);

        // The releasing ack lets the gated payload out and re-widens.
        let up_to = e.clock();
        e.handle(Input::ElAck { up_to }).unwrap();
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
        assert_eq!(e.effective_batch_limit(), 8);
    }

    #[test]
    fn adaptive_policy_respects_floor_and_policy_reset() {
        let mut e = V2Engine::fresh_with_policy(
            Rank(1),
            2,
            BatchPolicy::Adaptive {
                min_events: 2,
                max_events: 16,
                gate_budget_ns: u64::MAX,
            },
        );
        assert_eq!(e.effective_batch_limit(), 2);
        // Repeated deferrals never push the limit below the floor.
        for round in 0..3u64 {
            let h = round + 1;
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(0), h);
            e.handle(Input::AppSend {
                dst: Rank(0),
                payload: pl(0),
            })
            .unwrap();
            let up_to = e.clock();
            e.handle(Input::ElAck { up_to }).unwrap();
            outs(&mut e);
        }
        assert!(e.effective_batch_limit() >= 2);
        // Switching policies re-seeds the threshold.
        e.set_batch_policy(BatchPolicy::adaptive());
        assert_eq!(e.effective_batch_limit(), 1);
        e.set_batch_policy(BatchPolicy::Lazy { max_events: 5 });
        assert_eq!(e.effective_batch_limit(), 5);
        e.set_batch_policy(BatchPolicy::Immediate);
        assert_eq!(e.effective_batch_limit(), 1);
    }

    /// The load-bearing invariant under any interleaving of deliveries,
    /// sends, idle flushes and acks: a data transmission never leaves
    /// while any delivered reception's event is still unacked by the EL.
    #[test]
    fn transmit_never_precedes_ack_of_delivered_events() {
        for seed in 0..64u64 {
            let mut e =
                V2Engine::fresh_with_policy(Rank(0), 2, BatchPolicy::Lazy { max_events: 4 });
            let mut rng = seed;
            let mut next_h = 1u64; // peer's sender clock
            let mut shipped = 0u64; // highest rc the EL has seen
            let mut acked = 0u64; // highest rc the EL has acked
            let mut delivered = 0u64; // highest rc delivered to the app
            for _ in 0..40 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match (rng >> 33) % 4 {
                    0 => {
                        e.handle(Input::AppRecv).unwrap();
                        feed_data(&mut e, Rank(1), next_h);
                        next_h += 1;
                    }
                    1 => e
                        .handle(Input::AppSend {
                            dst: Rank(1),
                            payload: pl(0),
                        })
                        .unwrap(),
                    2 => e.handle(Input::FlushEvents).unwrap(),
                    _ => {
                        // The EL can only ack what it has received.
                        if shipped > acked {
                            acked = shipped;
                            e.handle(Input::ElAck { up_to: acked }).unwrap();
                        }
                    }
                }
                let mut saw_delivery = false;
                for o in e.drain_outputs() {
                    match o {
                        Output::LogEvents(b) => {
                            shipped = shipped.max(b.events.last().unwrap().receiver_clock);
                        }
                        Output::Deliver { .. } => saw_delivery = true,
                        Output::Transmit {
                            msg: PeerMsg::Data(_),
                            ..
                        } => {
                            assert!(
                                delivered <= acked,
                                "seed {seed}: transmit with delivery rc {delivered} unacked (acked {acked})"
                            );
                        }
                        _ => {}
                    }
                }
                if saw_delivery {
                    // Only the delivery in this step can have ticked the
                    // clock past the previous watermark.
                    delivered = e.clock();
                }
            }
        }
    }

    /// A crash while events sit unflushed loses exactly the suffix of
    /// receptions the EL never saw — and that is safe: the durable prefix
    /// replays identically, the lost receptions are re-delivered as fresh
    /// nondeterministic events, and no transmission ever depended on them.
    #[test]
    fn crash_between_flushes_preserves_replay_determinism() {
        let lazy = BatchPolicy::Lazy { max_events: 100 };
        // Pre-crash run: three receptions; only the first event reaches
        // the EL (explicit flush), the other two stay pending.
        let mut e = V2Engine::fresh_with_policy(Rank(0), 2, lazy);
        for h in 1..=3u64 {
            e.handle(Input::AppRecv).unwrap();
            feed_data(&mut e, Rank(1), h);
            if h == 1 {
                e.handle(Input::FlushEvents).unwrap();
            }
        }
        let o = outs(&mut e);
        let durable: Vec<ReceptionEvent> = o
            .iter()
            .filter_map(|x| match x {
                Output::LogEvents(b) => Some(b.events.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(durable.len(), 1, "only the explicit flush shipped");
        assert_eq!(e.pending_event_count(), 2);

        // Crash, no checkpoint image: recovery replays the EL's durable
        // prefix only.
        let mut r = V2Engine::fresh_with_policy(Rank(0), 2, lazy);
        r.begin_recovery(durable);
        outs(&mut r);
        assert!(r.is_replaying());
        r.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        // The peer re-sends everything; re-sends arrive out of order.
        for h in [3u64, 1, 2] {
            feed_data(&mut r, Rank(1), h);
        }
        // First recv: the logged reception replays exactly as recorded.
        r.handle(Input::AppRecv).unwrap();
        let o = outs(&mut r);
        assert!(o
            .iter()
            .any(|x| matches!(x, Output::Deliver { from, payload } if *from == Rank(1) && *payload == pl(1))));
        assert!(o.iter().any(|x| matches!(x, Output::ReplayComplete)));
        assert_eq!(r.clock(), 1, "replayed delivery reproduces rc 1");
        assert_eq!(r.metrics().replayed_deliveries, 1);
        // The two lost receptions come back as fresh events with new
        // clocks, in per-pair sender-clock order.
        let mut redelivered = Vec::new();
        for _ in 0..2 {
            r.handle(Input::AppRecv).unwrap();
            for x in outs(&mut r) {
                if let Output::Deliver { payload, .. } = x {
                    redelivered.push(payload);
                }
            }
        }
        assert_eq!(redelivered, vec![pl(2), pl(3)]);
        assert_eq!(r.clock(), 3);
        assert_eq!(
            r.pending_event_count(),
            2,
            "re-received messages are fresh lazily-batched events"
        );
    }

    #[test]
    fn out_of_order_arrival_buffers_in_clock_order() {
        // An in-flight message emitted toward a dead incarnation can land
        // in the new incarnation's mailbox *ahead* of the RESTART resends
        // of its predecessors. The buffer must re-establish per-sender
        // clock order and must not mistake the late-arriving earlier
        // clocks for duplicates.
        let mut e = V2Engine::fresh(Rank(1), 2);
        feed_data(&mut e, Rank(0), 3);
        feed_data(&mut e, Rank(0), 1);
        // A duplicate of a buffered, undelivered message is recognized by
        // membership (no arrival high-watermark involved).
        feed_data(&mut e, Rank(0), 3);
        assert_eq!(e.metrics().duplicates_dropped, 1);
        feed_data(&mut e, Rank(0), 2);
        let mut got = Vec::new();
        for _ in 0..3 {
            e.handle(Input::AppRecv).unwrap();
            for x in outs(&mut e) {
                if let Output::Deliver { payload, .. } = x {
                    got.push(payload);
                }
            }
        }
        assert_eq!(got, vec![pl(1), pl(2), pl(3)], "delivered in clock order");
        // Once delivered, duplicates fall to the HR watermark.
        feed_data(&mut e, Rank(0), 2);
        assert_eq!(e.metrics().duplicates_dropped, 2);
    }

    #[test]
    fn gate_wait_and_el_rtt_counted_with_flight_records() {
        use mvr_obs::RecorderConfig;
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Immediate);
        e.set_recorder(Recorder::new(1, RecorderConfig::enabled()));
        // A delivery closes the gate and ships its event.
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        // A send queues behind the gate.
        e.handle(Input::AppSend {
            dst: Rank(0),
            payload: pl(9),
        })
        .unwrap();
        outs(&mut e);
        // The ack retires the batch and opens the gate.
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        assert_eq!(data_out(&outs(&mut e)).len(), 1);
        let m = *e.metrics();
        assert_eq!(m.el_batches_sent, 1);
        assert_eq!(m.el_batches_acked, 1, "ship/ack balance at quiescence");
        assert_eq!(m.gate_deferred_sends, 1);
        let t = e.timings().summary();
        assert_eq!(t.gate_wait.count, 1, "one released send sampled");
        assert_eq!(t.el_ack_rtt.count, 1, "one retired batch sampled");
        assert_eq!(m.gate_wait_ns, t.gate_wait.sum);
        assert_eq!(m.el_ack_rtt_ns, t.el_ack_rtt.sum);
        // The recorder saw the protocol sequence and validates clean.
        let tl = e.recorder().snapshot();
        let kinds: Vec<&str> = tl.iter().map(|r| r.event.kind()).collect();
        for want in ["deliver", "el-ship", "gate-defer", "el-ack", "gate-open"] {
            assert!(kinds.contains(&want), "missing {want} in {kinds:?}");
        }
        mvr_obs::validate_records(&tl).expect("schema-clean timeline");
    }

    #[test]
    fn coalesced_ack_retires_every_covered_batch() {
        let mut e = V2Engine::fresh_with_policy(Rank(1), 2, BatchPolicy::Lazy { max_events: 8 });
        // Two separate flushes ship two batches.
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 1);
        e.handle(Input::FlushEvents).unwrap();
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(0), 2);
        e.handle(Input::FlushEvents).unwrap();
        outs(&mut e);
        assert_eq!(e.metrics().el_batches_sent, 2);
        // One coalesced high-watermark ack covers both.
        e.handle(Input::ElAck { up_to: 2 }).unwrap();
        let m = e.metrics();
        assert_eq!(m.el_acks_received, 1, "the EL coalesced");
        assert_eq!(m.el_batches_acked, 2, "both batches retired");
        assert_eq!(e.timings().el_ack_rtt.count(), 2);
    }

    #[test]
    fn recovery_clears_stale_el_rtt_queue() {
        let mut e = V2Engine::fresh_with_policy(Rank(0), 2, BatchPolicy::Immediate);
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(1), 1);
        outs(&mut e);
        assert_eq!(e.metrics().el_batches_sent, 1);
        // Crash without the ack: the new incarnation must not credit the
        // dead batch to a later ack.
        let mut r = V2Engine::fresh(Rank(0), 2);
        r.begin_recovery(vec![]);
        outs(&mut r);
        r.handle(Input::ElAck { up_to: 5 }).unwrap();
        assert_eq!(r.metrics().el_batches_acked, 0);
        assert_eq!(r.timings().el_ack_rtt.count(), 0);
    }

    #[test]
    fn restart_purges_gated_and_resends_in_clock_order() {
        // A live re-executed send queued behind the gate must not be
        // emitted ahead of the older SAVED messages a RESTART1 asks to
        // re-send: the peer's replay assumes ascending per-pair clocks.
        let mut e = V2Engine::fresh_with_policy(Rank(0), 2, BatchPolicy::Immediate);
        for n in [1u8, 2, 3] {
            e.handle(Input::AppSend {
                dst: Rank(1),
                payload: pl(n),
            })
            .unwrap();
        }
        assert_eq!(data_out(&outs(&mut e)).len(), 3, "gate open: all sent");
        // A reception closes the gate; the next send is queued.
        e.handle(Input::AppRecv).unwrap();
        feed_data(&mut e, Rank(1), 1);
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: pl(9),
        })
        .unwrap();
        assert!(data_out(&outs(&mut e)).is_empty(), "send gated");
        // The peer restarts having only received our clock 1.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart1 { last_received: 1 },
        })
        .unwrap();
        outs(&mut e);
        e.handle(Input::ElAck { up_to: 4 }).unwrap();
        let clocks: Vec<u64> = data_out(&outs(&mut e))
            .iter()
            .map(|(_, id, _)| id.sender_clock)
            .collect();
        let mut sorted = clocks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            clocks, sorted,
            "post-restart emissions ascend without duplicates"
        );
        assert!(
            clocks.contains(&5),
            "the purged gated send is re-emitted from SAVED"
        );
        assert_eq!(clocks, vec![2, 3, 5]);
    }
}
