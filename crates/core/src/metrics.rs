//! Instrumentation counters exposed by the protocol engines.
//!
//! These feed the checkpoint scheduler's status reports (§4.6.2), the
//! benchmark harness, and the test suite's invariant checks (e.g. "no
//! payload leaves while the gate is closed" is validated by comparing
//! `gate_deferred_sends` against observed wire traffic).

use serde::{Deserialize, Serialize};

/// Monotonic counters describing one engine's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Application messages emitted (clock-ticked sends).
    pub msgs_sent: u64,
    /// Payload bytes emitted.
    pub bytes_sent: u64,
    /// Messages delivered to the application.
    pub msgs_delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Reception events scheduled for logging on the EL.
    pub events_logged: u64,
    /// Transmissions that had to queue behind the pessimism gate.
    pub gate_deferred_sends: u64,
    /// Total nanoseconds deferred transmissions spent queued behind the
    /// gate (summed per released send; the distribution lives in the
    /// engine's `ProtocolTimings`).
    pub gate_wait_ns: u64,
    /// Incoming messages dropped as duplicates.
    pub duplicates_dropped: u64,
    /// Old messages re-sent from the sender log during a peer's recovery.
    pub retransmissions: u64,
    /// Messages suppressed because the peer provably received them
    /// (`h <= HS` during re-execution).
    pub transmissions_suppressed: u64,
    /// Deliveries performed in replay mode.
    pub replayed_deliveries: u64,
    /// Unsuccessful probes answered (normal mode).
    pub failed_probes: u64,
    /// Bytes reclaimed from the sender log by garbage collection.
    pub gc_bytes_freed: u64,
    /// Checkpoints completed.
    pub checkpoints_taken: u64,
    /// Event batches shipped to the event logger.
    pub el_batches_sent: u64,
    /// Events carried by those batches (equals `events_logged` once every
    /// pending event has been flushed).
    pub el_events_batched: u64,
    /// Acknowledgements received from the event logger. The EL
    /// coalesces high-watermark acks, so this can be *smaller* than
    /// `el_batches_sent`; use `el_batches_acked` for ship/ack balance.
    pub el_acks_received: u64,
    /// Shipped batches retired by an EL ack covering their highest
    /// receiver clock. At quiescence (all batches acked, none lost to a
    /// crash) this equals `el_batches_sent`.
    pub el_batches_acked: u64,
    /// Total nanoseconds of ship→ack round-trip, summed per retired
    /// batch (the distribution lives in the engine's `ProtocolTimings`).
    pub el_ack_rtt_ns: u64,
    /// Largest single batch shipped to the event logger.
    pub el_max_batch_events: u64,
    /// Recoveries begun by this incarnation (`begin_recovery` calls:
    /// ROLLBACK + DownloadEL entry points).
    pub recoveries: u64,
    /// Replays driven to completion (the `ReplayComplete` transitions,
    /// including trivially-empty replays of from-scratch restarts).
    pub replays_completed: u64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let m = Metrics::new();
        assert_eq!(m.msgs_sent, 0);
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = Metrics::new();
        m.msgs_sent = 7;
        m.gc_bytes_freed = 1024;
        let enc = bincode::serialize(&m).unwrap();
        assert_eq!(m, bincode::deserialize::<Metrics>(&enc).unwrap());
    }
}
