//! Mapping from the paper's Appendix-A protocol (its variables, routines,
//! actions and rules) to this implementation — the traceability matrix of
//! the reproduction, with executable checks of the non-obvious mappings.
//!
//! # Variables (Appendix A) → state
//!
//! | Paper | Here |
//! |---|---|
//! | `EL_p` — list of events to replay | [`ReplayPlan`](crate::replay::ReplayPlan) inside [`V2Engine`](crate::engine::V2Engine)'s replay mode |
//! | `H_p` — logical clock | [`LogicalClock`](crate::clock::LogicalClock) (ticks on send and delivery) |
//! | `HR_p[q]` — date of last received event from `q` (in `q`'s clock) | [`Watermarks::hr`](crate::recovery::Watermarks::hr) |
//! | `HS_p[q]` — date of last sent event to `q` (in `p`'s clock) | [`Watermarks::hs`](crate::recovery::Watermarks::hs) |
//! | `SAVED_p` — set of message backups | [`SenderLog`](crate::sender_log::SenderLog) |
//!
//! # Routines → mechanisms
//!
//! | Paper | Here |
//! |---|---|
//! | `LOG(data, d)` | [`Output::LogEvents`](crate::engine::Output::LogEvents) shipped to the event logger |
//! | `WAITLOGGED()` | the [`PessimismGate`](crate::pessimism::PessimismGate): transmissions queue until the EL ack covers every scheduled event |
//! | `SEND(x, d)` | [`Output::Transmit`](crate::engine::Output::Transmit) |
//! | `UNDETACTION(d)` | probe outcomes — counted per §4.5 rather than logged individually (see below) |
//! | `POP(list)` | [`ReplayPlan::try_deliver`](crate::replay::ReplayPlan::try_deliver) / [`ReplayPlan::probe`](crate::replay::ReplayPlan::probe) |
//! | `DELIVER(m, p)` | [`Output::Deliver`](crate::engine::Output::Deliver) |
//! | `ROLLBACK()` | [`V2Engine::restore`](crate::engine::V2Engine::restore) from an [`EngineSnapshot`](crate::snapshot::EngineSnapshot) |
//! | `DownloadEL(H_p)` | [`ElRequest::Download`](crate::envelope::ElRequest::Download)` { after_clock: H_p }` + [`V2Engine::begin_recovery`](crate::engine::V2Engine::begin_recovery) |
//!
//! # Actions and rules → handlers
//!
//! | Paper | Here |
//! |---|---|
//! | `send(m, q)` | [`Input::AppSend`](crate::engine::Input::AppSend): *always* appends to `SAVED` (Lemma 1 requires rebuilt logs even for suppressed re-sends — the pseudo-code's `if H_p ≥ HS_p[q]` guard is widened accordingly, see the checks below), transmits iff `h > HS_p[q]`, behind `WAITLOGGED` |
//! | `recv()` | [`Input::AppRecv`](crate::engine::Input::AppRecv): normal mode logs `(H_q, q)` at `H_p` and delivers; replay mode pops the plan |
//! | `UnDetAction(data)` | [`Input::AppProbe`](crate::engine::Input::AppProbe): unsuccessful probes are *counted* into the next reception event's `probes` field (§4.5's compression of probe nondeterminism) and reproduced by [`ProbeVerdict`](crate::replay::ProbeVerdict) |
//! | `on Restart()` | restore → `begin_recovery(DownloadEL(H_p))` → `RESTART1(HR_p[q])` broadcast |
//! | `on RECV(RESTART1(HP), q)` | [`PeerMsg::Restart1`](crate::envelope::PeerMsg::Restart1) handler: `HS_p[q] = HP` (overwrite — even downward, duplicates are receiver-suppressed), reply `RESTART2(HR_p[q])`, re-send `SAVED` entries with `h > HS_p[q]` |
//! | `on RECV(RESTART2(HP), q)` | [`PeerMsg::Restart2`](crate::envelope::PeerMsg::Restart2) handler: same minus the reply |
//!
//! # Deliberate deviations from the simplified pseudo-code
//!
//! 1. **`SAVED` is appended unconditionally** on every (re-)executed
//!    send. The pseudo-code skips the whole body when `H_p < HS_p[q]`,
//!    but Lemma 1's proof *requires* re-executed sends to repopulate
//!    `SAVED` ("all send() events which are deterministic are replayed at
//!    the same clock with the same data and thus … appended to respective
//!    SAVED set"). We follow the lemma, not the pseudo-code.
//! 2. **Recovery re-sends respect `WAITLOGGED`.** A `SAVED` entry whose
//!    original transmission is still gated must not leak through a
//!    `RESTART` re-send — otherwise a receiver could causally depend on
//!    an unlogged reception. The pseudo-code's re-sends bypass the gate
//!    because there the append itself happens after `WAITLOGGED`.
//! 3. **Post-restart connection fencing.** Data arriving from a peer
//!    after our `begin_recovery` but before that peer's
//!    `RESTART1`/`RESTART2` handshake belongs to the old (dead) TCP
//!    connection and is discarded; in the paper this is implicit in
//!    socket lifecycles.
//! 4. **GC watermarks are captured at the snapshot instant**, not when
//!    the checkpoint server's ack returns — deliveries continue while the
//!    image is in flight, and a later watermark would let senders drop
//!    messages the image does not cover.

#[cfg(test)]
mod checks {
    use crate::engine::{Input, Output, V2Engine};
    use crate::envelope::{DataMsg, PeerMsg};
    use crate::ids::{MsgId, Rank};
    use crate::payload::Payload;

    /// Deviation 1: suppressed re-executed sends still rebuild `SAVED`.
    #[test]
    fn suppressed_resends_repopulate_saved() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        e.begin_recovery(vec![]);
        e.drain_outputs();
        // Peer already holds our clock-1 message.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 1 },
        })
        .unwrap();
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: Payload::filled(1, 8),
        })
        .unwrap();
        let outs = e.drain_outputs();
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                Output::Transmit {
                    msg: PeerMsg::Data(_),
                    ..
                }
            )),
            "transmission must be suppressed"
        );
        assert_eq!(
            e.logged_bytes(),
            8,
            "SAVED must still hold the payload (Lemma 1)"
        );
    }

    /// Deviation 2: a recovery re-send of a still-gated payload must not
    /// leak past WAITLOGGED.
    #[test]
    fn restart_resends_respect_waitlogged() {
        let mut e = V2Engine::fresh(Rank(0), 3);
        // Close the gate with an unacked delivery.
        e.handle(Input::Peer {
            from: Rank(2),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(2), 1),
                dst: Rank(0),
                payload: Payload::filled(0, 4),
            }),
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        // A send queues behind the gate.
        e.handle(Input::AppSend {
            dst: Rank(1),
            payload: Payload::filled(7, 4),
        })
        .unwrap();
        e.drain_outputs();
        // Peer 1 restarts: the re-send of that very payload must stay
        // gated too.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart1 { last_received: 0 },
        })
        .unwrap();
        let outs = e.drain_outputs();
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                Output::Transmit {
                    msg: PeerMsg::Data(_),
                    ..
                }
            )),
            "gated payload leaked through a RESTART re-send"
        );
        // The ack releases everything.
        e.handle(Input::ElAck { up_to: 1 }).unwrap();
        let outs = e.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Transmit {
                msg: PeerMsg::Data(_),
                ..
            }
        )));
    }

    /// Deviation 3: pre-handshake data is fenced after a restart.
    #[test]
    fn old_connection_data_is_fenced() {
        let mut e = V2Engine::fresh(Rank(0), 2);
        e.begin_recovery(vec![]);
        e.drain_outputs();
        // Data before the peer's handshake: dropped.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 7),
                dst: Rank(0),
                payload: Payload::filled(0, 1),
            }),
        })
        .unwrap();
        assert_eq!(e.metrics().duplicates_dropped, 1);
        // After RESTART2, data flows.
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Restart2 { last_received: 0 },
        })
        .unwrap();
        e.handle(Input::AppRecv).unwrap();
        e.handle(Input::Peer {
            from: Rank(1),
            msg: PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(1), 7),
                dst: Rank(0),
                payload: Payload::filled(0, 1),
            }),
        })
        .unwrap();
        let outs = e.drain_outputs();
        assert!(outs.iter().any(|o| matches!(o, Output::Deliver { .. })));
    }
}
