//! Reception events — the causality information logged on the reliable
//! Event Logger.
//!
//! §4.5: "The dependency information is composed of four fields associated
//! to every received message: (sender's identity; sender's logical clock at
//! emission; receiver's logical clock at delivery; number of probes since
//! last delivery)."

use crate::ids::{MsgId, Rank};
use serde::{Deserialize, Serialize};

/// The 4-field dependency record of one message delivery.
///
/// The pair `(sender, sender_clock)` identifies *which* message was
/// delivered; `receiver_clock` fixes *when* in the receiver's history it was
/// delivered (and therefore the total replay order); `probes` records how
/// many unsuccessful `PInprobe` calls the receiver made since its previous
/// delivery, so the exact same control flow can be replayed (§4.5: "the
/// number of probes made since the last reception influences the next
/// reception").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReceptionEvent {
    /// Identity of the sending process.
    pub sender: Rank,
    /// The sender's logical clock at emission.
    pub sender_clock: u64,
    /// The receiver's logical clock at delivery (unique, strictly
    /// increasing across the receiver's events).
    pub receiver_clock: u64,
    /// Number of unsuccessful probes since the last delivery.
    pub probes: u32,
}

impl ReceptionEvent {
    /// The identifier of the delivered message.
    #[inline]
    pub fn msg_id(&self) -> MsgId {
        MsgId::new(self.sender, self.sender_clock)
    }

    /// Approximate size of the record on the wire. The paper quotes "a small
    /// message (in the order of 20 bytes) to the Event Logger"; our encoding
    /// matches that magnitude and the simulator uses this constant.
    pub const WIRE_BYTES: usize = 20;
}

/// When the engine ships accumulated reception events to the event logger.
///
/// Lazy batching is safe under the pessimism invariant (§4.1): the
/// WAITLOGGED gate closes at *delivery*, so no payload can leave while any
/// delivered reception's event is unacknowledged — regardless of when the
/// event batch is actually transmitted. A reception with no subsequent
/// send has no externally visible effect, so deferring its event costs
/// nothing; what batching buys is one EL round-trip amortized over many
/// deliveries instead of one per delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Ship every event as soon as it is produced — one EL round-trip per
    /// delivered message, the eager behavior of the paper's prototype.
    Immediate,
    /// Accumulate events; flush only when a data send queues behind the
    /// pessimism gate, the batch reaches `max_events`, or a checkpoint /
    /// replay completion / host-driven idle flush forces it.
    Lazy {
        /// Flush threshold: a batch never exceeds this many events.
        max_events: usize,
    },
    /// Lazy batching whose flush threshold is tuned *online*, per engine,
    /// from the live gate-wait histogram instead of a hand-picked
    /// constant. The limit starts at `min_events` and doubles on every EL
    /// ack while the observed gate-wait p99 stays under `gate_budget_ns`
    /// (acks return fast enough that bigger batches are free); it halves
    /// whenever a send actually queues behind the pessimism gate (the
    /// batch then sits on the very events whose ack the send needs).
    Adaptive {
        /// Lower bound of the adapted flush threshold (≥ 1).
        min_events: usize,
        /// Upper bound of the adapted flush threshold.
        max_events: usize,
        /// Gate-wait p99 budget (ns) under which the limit may widen.
        gate_budget_ns: u64,
    },
}

impl BatchPolicy {
    /// Size bound of the default lazy policy.
    pub const DEFAULT_MAX_EVENTS: usize = 32;

    /// Gate-wait p99 budget of [`BatchPolicy::adaptive`]: 100 µs, an
    /// order of magnitude above a healthy in-process EL ack RTT.
    pub const DEFAULT_GATE_BUDGET_NS: u64 = 100_000;

    /// An adaptive policy with the default bounds (1..=256 events) and
    /// gate budget.
    pub fn adaptive() -> Self {
        BatchPolicy::Adaptive {
            min_events: 1,
            max_events: 256,
            gate_budget_ns: Self::DEFAULT_GATE_BUDGET_NS,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::Lazy {
            max_events: Self::DEFAULT_MAX_EVENTS,
        }
    }
}

/// A batch of events, as shipped from a daemon to its event logger.
/// Events in a batch are ordered by `receiver_clock`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventBatch {
    /// The rank whose receptions these are.
    pub owner: Rank,
    /// Events in receiver-clock order.
    pub events: Vec<ReceptionEvent>,
}

impl EventBatch {
    /// True if `events` is sorted strictly by receiver clock — the invariant
    /// every producer must uphold and the event logger asserts.
    pub fn is_ordered(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| w[0].receiver_clock < w[1].receiver_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u32, sc: u64, rc: u64, p: u32) -> ReceptionEvent {
        ReceptionEvent {
            sender: Rank(s),
            sender_clock: sc,
            receiver_clock: rc,
            probes: p,
        }
    }

    #[test]
    fn msg_id_extraction() {
        let e = ev(3, 17, 40, 2);
        assert_eq!(e.msg_id(), MsgId::new(Rank(3), 17));
    }

    #[test]
    fn wire_size_is_about_twenty_bytes() {
        let e = ev(3, 17, 40, 2);
        let enc = bincode::serialize(&e).unwrap();
        // 4 (rank) + 8 + 8 + 4 = 24 bytes with bincode's fixed-int encoding;
        // the paper says "in the order of 20 bytes".
        assert!(
            enc.len() <= 24,
            "encoded event unexpectedly large: {}",
            enc.len()
        );
        const { assert!(ReceptionEvent::WIRE_BYTES >= 16 && ReceptionEvent::WIRE_BYTES <= 24) };
    }

    #[test]
    fn batch_ordering_invariant() {
        let good = EventBatch {
            owner: Rank(0),
            events: vec![ev(1, 1, 1, 0), ev(2, 1, 2, 0)],
        };
        assert!(good.is_ordered());
        let bad = EventBatch {
            owner: Rank(0),
            events: vec![ev(1, 1, 2, 0), ev(2, 1, 2, 0)],
        };
        assert!(!bad.is_ordered());
        let empty = EventBatch {
            owner: Rank(0),
            events: vec![],
        };
        assert!(empty.is_ordered());
    }

    #[test]
    fn serde_roundtrip() {
        let b = EventBatch {
            owner: Rank(4),
            events: vec![ev(1, 9, 10, 3)],
        };
        let enc = bincode::serialize(&b).unwrap();
        let dec: EventBatch = bincode::deserialize(&enc).unwrap();
        assert_eq!(b, dec);
    }
}
