//! The comparison protocols of the paper's evaluation.
//!
//! * [`p4`] — the non-fault-tolerant reference (MPICH-P4): direct
//!   transmission, no logging, no recovery.
//! * [`v1`] — MPICH-V1: pessimistic logging on reliable Channel Memories;
//!   every message transits through (and is stored on) the Channel Memory
//!   associated with its receiver, halving the usable bandwidth but
//!   providing uncoordinated restart with a lower small-message latency
//!   than V2 (no event-logger ack on the send path).

pub mod p4;
pub mod v1;
