//! The MPICH-P4-like baseline engine: direct transmission, no fault
//! tolerance. Used as the performance reference (it pays none of the
//! logging costs) and to validate that the V2 engine degenerates to the
//! same observable behaviour in fault-free runs.

use crate::envelope::{DataMsg, PeerMsg};
use crate::ids::{MsgId, Rank};
use crate::metrics::Metrics;
use crate::payload::Payload;
use std::collections::VecDeque;

/// Commands emitted by the P4 engine (a strict subset of the V2 outputs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P4Output {
    /// Ship a message to a peer daemon.
    Transmit {
        /// Destination.
        to: Rank,
        /// The message (always `PeerMsg::Data`).
        msg: PeerMsg,
    },
    /// Hand a message to the blocked MPI process.
    Deliver {
        /// Original sender.
        from: Rank,
        /// MPI-layer bytes.
        payload: Payload,
    },
    /// Answer a probe.
    ProbeAnswer(bool),
}

/// Minimal direct-transmission engine.
#[derive(Debug)]
pub struct P4Engine {
    rank: Rank,
    /// Per-process send counter, reused as the message id clock so wire
    /// formats stay shared with V2.
    send_clock: u64,
    recv_buffer: VecDeque<(Rank, Payload)>,
    app_waiting_recv: bool,
    metrics: Metrics,
    outputs: VecDeque<P4Output>,
}

impl P4Engine {
    /// Fresh engine for `rank`.
    pub fn new(rank: Rank) -> Self {
        P4Engine {
            rank,
            send_clock: 0,
            recv_buffer: VecDeque::new(),
            app_waiting_recv: false,
            metrics: Metrics::new(),
            outputs: VecDeque::new(),
        }
    }

    /// Channel-level blocking send.
    pub fn app_send(&mut self, dst: Rank, payload: Payload) {
        self.send_clock += 1;
        self.metrics.msgs_sent += 1;
        self.metrics.bytes_sent += payload.len() as u64;
        let msg = PeerMsg::Data(DataMsg {
            id: MsgId::new(self.rank, self.send_clock),
            dst,
            payload,
        });
        self.outputs.push_back(P4Output::Transmit { to: dst, msg });
    }

    /// Channel-level blocking receive request.
    pub fn app_recv(&mut self) {
        self.app_waiting_recv = true;
        self.try_deliver();
    }

    /// Probe for a pending message.
    pub fn app_probe(&mut self) {
        let pending = !self.recv_buffer.is_empty();
        if !pending {
            self.metrics.failed_probes += 1;
        }
        self.outputs.push_back(P4Output::ProbeAnswer(pending));
    }

    /// A peer message arrived. P4 has no recovery traffic; anything but
    /// data is tolerated and ignored.
    pub fn on_peer(&mut self, from: Rank, msg: PeerMsg) {
        if let PeerMsg::Data(d) = msg {
            debug_assert_eq!(d.dst, self.rank);
            self.recv_buffer.push_back((from, d.payload));
            self.try_deliver();
        }
    }

    fn try_deliver(&mut self) {
        if !self.app_waiting_recv {
            return;
        }
        if let Some((from, payload)) = self.recv_buffer.pop_front() {
            self.app_waiting_recv = false;
            self.metrics.msgs_delivered += 1;
            self.metrics.bytes_delivered += payload.len() as u64;
            self.outputs.push_back(P4Output::Deliver { from, payload });
        }
    }

    /// Drain accumulated commands.
    pub fn drain_outputs(&mut self) -> Vec<P4Output> {
        self.outputs.drain(..).collect()
    }

    /// Counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(n: u8) -> Payload {
        Payload::from_vec(vec![n])
    }

    #[test]
    fn direct_send_and_receive() {
        let mut a = P4Engine::new(Rank(0));
        let mut b = P4Engine::new(Rank(1));
        a.app_send(Rank(1), pl(7));
        let outs = a.drain_outputs();
        let P4Output::Transmit { to, msg } = &outs[0] else {
            panic!()
        };
        assert_eq!(*to, Rank(1));
        b.app_recv();
        b.on_peer(Rank(0), msg.clone());
        let outs = b.drain_outputs();
        assert!(matches!(&outs[..], [P4Output::Deliver { from, .. }] if *from == Rank(0)));
    }

    #[test]
    fn exactly_one_wire_message_per_send() {
        // The Fig. 6 claim: "P4 only sends two [TCP messages per
        // ping-pong round-trip]" — one per direction.
        let mut a = P4Engine::new(Rank(0));
        for _ in 0..10 {
            a.app_send(Rank(1), pl(0));
        }
        let wire = a
            .drain_outputs()
            .into_iter()
            .filter(|o| matches!(o, P4Output::Transmit { .. }))
            .count();
        assert_eq!(wire, 10);
    }

    #[test]
    fn probe_reports_buffer_state() {
        let mut b = P4Engine::new(Rank(1));
        b.app_probe();
        assert_eq!(b.drain_outputs(), vec![P4Output::ProbeAnswer(false)]);
        b.on_peer(
            Rank(0),
            PeerMsg::Data(DataMsg {
                id: MsgId::new(Rank(0), 1),
                dst: Rank(1),
                payload: pl(0),
            }),
        );
        b.app_probe();
        assert_eq!(b.drain_outputs(), vec![P4Output::ProbeAnswer(true)]);
    }
}
