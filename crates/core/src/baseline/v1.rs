//! The MPICH-V1 baseline (§3.2): pessimistic message logging on reliable
//! **Channel Memories**.
//!
//! "Every communication sent to a process is stored and ordered on its
//! associated Channel Memory. To receive a message, a process sends a
//! request to its associated Channel Memory. After a crash, a re-executing
//! process retrieves all lost receptions in the correct order by requesting
//! them to its Channel Memory."
//!
//! Two state machines live here: the computing-node side ([`V1Engine`]) and
//! the reliable repository ([`ChannelMemory`]). The architectural costs the
//! paper measures fall out directly: every payload crosses the network
//! twice (sender → CM, CM → receiver), and the number of reliable nodes
//! scales with the computing nodes (the paper used N/4 Channel Memories).

use crate::envelope::{CmReply, CmRequest, DataMsg};
use crate::ids::{MsgId, Rank};
use crate::metrics::Metrics;
use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

// ---------------------------------------------------------------------
// Channel Memory (reliable side)
// ---------------------------------------------------------------------

/// The reliable repository associated with one computing process. Stores
/// every message destined to its owner in arrival order; serves pulls by
/// reception index, deferring them until the message exists.
#[derive(Debug, Serialize, Deserialize)]
pub struct ChannelMemory {
    owner: Rank,
    /// Stored receptions in order; index = reception sequence number.
    stored: Vec<DataMsg>,
    /// Push dedup (a re-executing sender re-pushes the same ids).
    seen: HashSet<MsgId>,
    /// A deferred pull, if the owner asked for a not-yet-arrived seq.
    waiting_pull: Option<u64>,
}

impl ChannelMemory {
    /// New empty repository for `owner`.
    pub fn new(owner: Rank) -> Self {
        ChannelMemory {
            owner,
            stored: Vec::new(),
            seen: HashSet::new(),
            waiting_pull: None,
        }
    }

    /// The owning rank.
    pub fn owner(&self) -> Rank {
        self.owner
    }

    /// Number of stored receptions.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// Total payload bytes stored (the reliable-storage cost of V1, which
    /// is proportional to the payload sizes — the V2 paper's motivation).
    pub fn bytes_stored(&self) -> u64 {
        self.stored.iter().map(|m| m.payload.len() as u64).sum()
    }

    /// Handle a request; replies may be produced immediately and/or when a
    /// deferred pull becomes satisfiable.
    pub fn handle(&mut self, req: CmRequest) -> Vec<CmReply> {
        let mut out = Vec::new();
        match req {
            CmRequest::Push(msg) => {
                debug_assert_eq!(msg.dst, self.owner, "pushed to the wrong CM");
                if self.seen.insert(msg.id) {
                    self.stored.push(msg);
                }
                out.push(CmReply::PushAck);
                if let Some(seq) = self.waiting_pull {
                    if (seq as usize) < self.stored.len() {
                        self.waiting_pull = None;
                        out.push(CmReply::Msg {
                            seq,
                            msg: self.stored[seq as usize].clone(),
                        });
                    }
                }
            }
            CmRequest::Pull { seq } => {
                if (seq as usize) < self.stored.len() {
                    out.push(CmReply::Msg {
                        seq,
                        msg: self.stored[seq as usize].clone(),
                    });
                } else {
                    // A newer pull supersedes a stale one left behind by a
                    // crashed incarnation of the owner.
                    self.waiting_pull = Some(seq);
                }
            }
            CmRequest::Probe { seq } => {
                out.push(CmReply::ProbeAck {
                    seq,
                    pending: (seq as usize) < self.stored.len(),
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Computing-node side
// ---------------------------------------------------------------------

/// Commands emitted by the V1 computing-node engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum V1Output {
    /// Send a request to the Channel Memory associated with `owner`
    /// (pushes target the *destination's* CM; pulls/probes target our own).
    ToCm {
        /// Which rank's CM.
        owner: Rank,
        /// The request.
        req: CmRequest,
    },
    /// Hand a message to the blocked MPI process.
    Deliver {
        /// Original sender.
        from: Rank,
        /// MPI-layer bytes.
        payload: Payload,
    },
    /// Answer a probe.
    ProbeAnswer(bool),
}

/// The MPICH-V1 computing-node engine. Fault tolerance state is just the
/// pair (send clock, reception index): after a rollback, re-execution pulls
/// the same reception indices and the CM replays them in the stored order —
/// "a process re-execution is independent of the other processes".
#[derive(Debug)]
pub struct V1Engine {
    rank: Rank,
    send_clock: u64,
    /// Next reception index to pull.
    recv_seq: u64,
    app_waiting_recv: bool,
    /// Outstanding probe (the sequence it asked about), for dropping
    /// stale probe answers that cross a restart.
    pending_probe: Option<u64>,
    metrics: Metrics,
    outputs: VecDeque<V1Output>,
}

/// The checkpointable state of a [`V1Engine`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct V1Snapshot {
    /// Rank.
    pub rank: Rank,
    /// Send counter.
    pub send_clock: u64,
    /// Next reception index.
    pub recv_seq: u64,
}

impl V1Engine {
    /// Fresh engine.
    pub fn new(rank: Rank) -> Self {
        V1Engine {
            rank,
            send_clock: 0,
            recv_seq: 0,
            app_waiting_recv: false,
            pending_probe: None,
            metrics: Metrics::new(),
            outputs: VecDeque::new(),
        }
    }

    /// Restore from a checkpoint.
    pub fn restore(s: V1Snapshot) -> Self {
        let mut e = Self::new(s.rank);
        e.send_clock = s.send_clock;
        e.recv_seq = s.recv_seq;
        e
    }

    /// Capture the checkpointable state.
    pub fn snapshot(&self) -> V1Snapshot {
        V1Snapshot {
            rank: self.rank,
            send_clock: self.send_clock,
            recv_seq: self.recv_seq,
        }
    }

    /// Channel-level blocking send: push to the destination's CM.
    pub fn app_send(&mut self, dst: Rank, payload: Payload) {
        self.send_clock += 1;
        self.metrics.msgs_sent += 1;
        self.metrics.bytes_sent += payload.len() as u64;
        let msg = DataMsg {
            id: MsgId::new(self.rank, self.send_clock),
            dst,
            payload,
        };
        self.outputs.push_back(V1Output::ToCm {
            owner: dst,
            req: CmRequest::Push(msg),
        });
    }

    /// Channel-level blocking receive: pull the next reception index from
    /// our own CM.
    pub fn app_recv(&mut self) {
        debug_assert!(!self.app_waiting_recv);
        self.app_waiting_recv = true;
        let seq = self.recv_seq;
        self.outputs.push_back(V1Output::ToCm {
            owner: self.rank,
            req: CmRequest::Pull { seq },
        });
    }

    /// Probe our CM for the next reception.
    pub fn app_probe(&mut self) {
        let seq = self.recv_seq;
        self.pending_probe = Some(seq);
        self.outputs.push_back(V1Output::ToCm {
            owner: self.rank,
            req: CmRequest::Probe { seq },
        });
    }

    /// A reply arrived from a CM. Replies that do not match the current
    /// state are stale leftovers of a previous incarnation crossing a
    /// restart, and are dropped.
    pub fn on_cm_reply(&mut self, reply: CmReply) {
        match reply {
            CmReply::PushAck => {}
            CmReply::Msg { seq, msg } => {
                if seq != self.recv_seq || !self.app_waiting_recv {
                    return; // stale (pre-restart pull answered late)
                }
                self.recv_seq += 1;
                self.app_waiting_recv = false;
                self.metrics.msgs_delivered += 1;
                self.metrics.bytes_delivered += msg.payload.len() as u64;
                self.outputs.push_back(V1Output::Deliver {
                    from: msg.id.sender,
                    payload: msg.payload,
                });
            }
            CmReply::ProbeAck { seq, pending } => {
                if self.pending_probe != Some(seq) {
                    return; // stale
                }
                self.pending_probe = None;
                if !pending {
                    self.metrics.failed_probes += 1;
                }
                self.outputs.push_back(V1Output::ProbeAnswer(pending));
            }
        }
    }

    /// Drain accumulated commands.
    pub fn drain_outputs(&mut self) -> Vec<V1Output> {
        self.outputs.drain(..).collect()
    }

    /// Counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(n: u8) -> Payload {
        Payload::from_vec(vec![n])
    }

    /// Shuttle one engine's CM requests into the CMs and replies back.
    fn pump(engine: &mut V1Engine, cms: &mut [ChannelMemory]) -> Vec<(Rank, Payload)> {
        let mut delivered = Vec::new();
        loop {
            let outs = engine.drain_outputs();
            if outs.is_empty() {
                break;
            }
            for o in outs {
                match o {
                    V1Output::ToCm { owner, req } => {
                        for r in cms[owner.idx()].handle(req) {
                            // Replies to the requester only when it is the
                            // owner or a PushAck.
                            engine.on_cm_reply(r);
                        }
                    }
                    V1Output::Deliver { from, payload } => delivered.push((from, payload)),
                    V1Output::ProbeAnswer(_) => {}
                }
            }
        }
        delivered
    }

    #[test]
    fn message_transits_through_receiver_cm() {
        let mut cms = vec![ChannelMemory::new(Rank(0)), ChannelMemory::new(Rank(1))];
        let mut a = V1Engine::new(Rank(0));
        let mut b = V1Engine::new(Rank(1));
        a.app_send(Rank(1), pl(7));
        pump(&mut a, &mut cms);
        assert_eq!(cms[1].len(), 1, "payload stored on receiver's CM");
        assert_eq!(cms[1].bytes_stored(), 1);
        b.app_recv();
        let d = pump(&mut b, &mut cms);
        assert_eq!(d, vec![(Rank(0), pl(7))]);
    }

    #[test]
    fn reexecution_replays_from_cm_in_order() {
        let mut cms = vec![ChannelMemory::new(Rank(0)), ChannelMemory::new(Rank(1))];
        let mut a = V1Engine::new(Rank(0));
        let mut b = V1Engine::new(Rank(1));
        for i in 0..3 {
            a.app_send(Rank(1), pl(i));
        }
        pump(&mut a, &mut cms);
        let mut d = Vec::new();
        for _ in 0..3 {
            b.app_recv();
            d.extend(pump(&mut b, &mut cms));
        }
        assert_eq!(d.len(), 3);

        // b crashes and restarts from scratch (no checkpoint).
        let mut b2 = V1Engine::new(Rank(1));
        for _ in 0..3 {
            b2.app_recv();
            pump(&mut b2, &mut cms);
        }
        // Re-execution sees the exact same sequence.
        assert_eq!(b2.recv_seq, 3);
    }

    #[test]
    fn duplicate_pushes_deduplicated() {
        let mut cm = ChannelMemory::new(Rank(1));
        let m = DataMsg {
            id: MsgId::new(Rank(0), 1),
            dst: Rank(1),
            payload: pl(0),
        };
        cm.handle(CmRequest::Push(m.clone()));
        cm.handle(CmRequest::Push(m));
        assert_eq!(cm.len(), 1);
    }

    #[test]
    fn pull_defers_until_push() {
        let mut cm = ChannelMemory::new(Rank(1));
        assert!(cm.handle(CmRequest::Pull { seq: 0 }).is_empty());
        let replies = cm.handle(CmRequest::Push(DataMsg {
            id: MsgId::new(Rank(0), 1),
            dst: Rank(1),
            payload: pl(3),
        }));
        assert!(replies
            .iter()
            .any(|r| matches!(r, CmReply::Msg { seq: 0, .. })));
    }

    #[test]
    fn probe_answers_from_store() {
        let mut cm = ChannelMemory::new(Rank(1));
        let r = cm.handle(CmRequest::Probe { seq: 0 });
        assert_eq!(
            r,
            vec![CmReply::ProbeAck {
                seq: 0,
                pending: false
            }]
        );
        cm.handle(CmRequest::Push(DataMsg {
            id: MsgId::new(Rank(0), 1),
            dst: Rank(1),
            payload: pl(3),
        }));
        let r = cm.handle(CmRequest::Probe { seq: 0 });
        assert_eq!(
            r,
            vec![CmReply::ProbeAck {
                seq: 0,
                pending: true
            }]
        );
    }

    #[test]
    fn snapshot_restore_resumes_sequence() {
        let mut e = V1Engine::new(Rank(0));
        e.app_send(Rank(1), pl(0));
        let snap = e.snapshot();
        let r = V1Engine::restore(snap);
        assert_eq!(r.send_clock, 1);
        assert_eq!(r.recv_seq, 0);
    }
}
