//! The channel interface — the six primitives MPICH-V2 implements for
//! MPICH's protocol layer (§4.4), as a Rust trait.
//!
//! "MPICH-V2 is implemented as a channel for MPICH: it implements a set of
//! six primitives used by the protocol layer. The channel includes two
//! communication functions PIbrecv and PIbsend [...] PInprobe to check if
//! a message is pending; PIfrom to get the identifier of the last message
//! sender; PIiInit to initialize the channel and PIiFinish to finish the
//! execution."
//!
//! Everything above this trait (matching, tags, nonblocking requests,
//! collectives) is protocol-agnostic: the V2 runtime, the V1/P4 baselines
//! and the in-process test cluster all implement [`Channel`].

use crate::error::MpiResult;
use mvr_core::{Payload, Rank};

/// Information returned by channel initialization (`PIiInit`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelInfo {
    /// This process's rank.
    pub rank: Rank,
    /// Number of processes in the world.
    pub size: u32,
    /// Restored MPI-library state, when resuming from a checkpoint.
    pub restored_mpi_state: Option<Payload>,
    /// Restored application state, when resuming from a checkpoint.
    pub restored_app_state: Option<Payload>,
}

/// The channel interface between the MPI library (in the MPI process) and
/// the communication daemon.
pub trait Channel {
    /// `PIiInit`: establish the connection; returns rank, world size and
    /// any restored checkpoint state.
    fn init(&mut self) -> MpiResult<ChannelInfo>;

    /// `PIbsend`: blocking send of one protocol message to `dst`'s daemon.
    /// ("Blocking" means until the daemon accepted it, not until
    /// delivery.) Self-sends are short-circuited above this trait.
    fn bsend(&mut self, dst: Rank, bytes: Payload) -> MpiResult<()>;

    /// `PIbrecv` + `PIfrom`: blocking receive of the next protocol message
    /// in the daemon's (logged) delivery order, with its sender.
    fn brecv(&mut self) -> MpiResult<(Rank, Payload)>;

    /// `PInprobe`: is a protocol message pending? Nondeterministic; the V2
    /// daemon counts unsuccessful probes to replay them (§4.5).
    fn nprobe(&mut self) -> MpiResult<bool>;

    /// `PIiFinish`: orderly shutdown (the dispatcher's finalize message).
    fn finish(&mut self) -> MpiResult<()>;

    /// Has the daemon requested a checkpoint? Polled at checkpoint sites;
    /// a `true` answer must be followed by [`commit_checkpoint`].
    ///
    /// [`commit_checkpoint`]: Channel::commit_checkpoint
    fn checkpoint_pending(&mut self) -> MpiResult<bool> {
        Ok(false)
    }

    /// Deliver the serialized MPI-library and application state to the
    /// daemon, completing a requested checkpoint.
    fn commit_checkpoint(&mut self, _mpi_state: Payload, _app_state: Payload) -> MpiResult<()> {
        Ok(())
    }
}

impl<C: Channel + ?Sized> Channel for &mut C {
    fn init(&mut self) -> MpiResult<ChannelInfo> {
        (**self).init()
    }
    fn bsend(&mut self, dst: Rank, bytes: Payload) -> MpiResult<()> {
        (**self).bsend(dst, bytes)
    }
    fn brecv(&mut self) -> MpiResult<(Rank, Payload)> {
        (**self).brecv()
    }
    fn nprobe(&mut self) -> MpiResult<bool> {
        (**self).nprobe()
    }
    fn finish(&mut self) -> MpiResult<()> {
        (**self).finish()
    }
    fn checkpoint_pending(&mut self) -> MpiResult<bool> {
        (**self).checkpoint_pending()
    }
    fn commit_checkpoint(&mut self, mpi_state: Payload, app_state: Payload) -> MpiResult<()> {
        (**self).commit_checkpoint(mpi_state, app_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: daemons hand `Box<dyn Channel>` to
    /// generic apps.
    #[test]
    fn channel_is_object_safe() {
        struct Null;
        impl Channel for Null {
            fn init(&mut self) -> MpiResult<ChannelInfo> {
                Ok(ChannelInfo {
                    rank: Rank(0),
                    size: 1,
                    restored_mpi_state: None,
                    restored_app_state: None,
                })
            }
            fn bsend(&mut self, _dst: Rank, _bytes: Payload) -> MpiResult<()> {
                Ok(())
            }
            fn brecv(&mut self) -> MpiResult<(Rank, Payload)> {
                unimplemented!()
            }
            fn nprobe(&mut self) -> MpiResult<bool> {
                Ok(false)
            }
            fn finish(&mut self) -> MpiResult<()> {
                Ok(())
            }
        }
        let mut b: Box<dyn Channel> = Box::new(Null);
        let info = b.init().unwrap();
        assert_eq!(info.size, 1);
        assert!(!b.checkpoint_pending().unwrap());
        b.commit_checkpoint(Payload::empty(), Payload::empty())
            .unwrap();
    }
}
