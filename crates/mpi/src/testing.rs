//! An in-process test cluster: the MPI layer over plain shared queues,
//! with no fault tolerance and no daemons.
//!
//! This is *not* the MPICH-V2 runtime (that's `mvr-runtime`); it exists so
//! the MPI semantics can be tested and benchmarked in isolation, and so
//! workloads can be smoke-tested cheaply. It doubles as the reference
//! "MPICH-P4-like" execution for differential tests: a workload must
//! produce identical results here and on the fault-tolerant runtime.

use crate::channel::{Channel, ChannelInfo};
use crate::comm::Mpi;
use crate::error::{MpiError, MpiResult};
use mvr_core::{Payload, Rank};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Queue {
    q: Mutex<VecDeque<(Rank, Payload)>>,
    cv: Condvar,
}

struct Shared {
    queues: Vec<Queue>,
}

/// The [`Channel`] implementation of the local test cluster.
pub struct LocalChannel {
    rank: Rank,
    size: u32,
    shared: Arc<Shared>,
}

impl Channel for LocalChannel {
    fn init(&mut self) -> MpiResult<ChannelInfo> {
        Ok(ChannelInfo {
            rank: self.rank,
            size: self.size,
            restored_mpi_state: None,
            restored_app_state: None,
        })
    }

    fn bsend(&mut self, dst: Rank, bytes: Payload) -> MpiResult<()> {
        let qs = &self.shared.queues;
        let slot = qs.get(dst.idx()).ok_or(MpiError::InvalidArgument(format!(
            "destination {dst} out of range"
        )))?;
        slot.q
            .lock()
            .expect("poisoned")
            .push_back((self.rank, bytes));
        slot.cv.notify_one();
        Ok(())
    }

    fn brecv(&mut self) -> MpiResult<(Rank, Payload)> {
        let slot = &self.shared.queues[self.rank.idx()];
        let mut q = slot.q.lock().expect("poisoned");
        loop {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            q = slot.cv.wait(q).expect("poisoned");
        }
    }

    fn nprobe(&mut self) -> MpiResult<bool> {
        Ok(!self.shared.queues[self.rank.idx()]
            .q
            .lock()
            .expect("poisoned")
            .is_empty())
    }

    fn finish(&mut self) -> MpiResult<()> {
        Ok(())
    }
}

/// Run `f` as rank 0..size on dedicated threads over a local cluster and
/// collect the per-rank results in rank order. Panics in any rank
/// propagate.
pub fn run_local<F, T>(size: u32, f: F) -> MpiResult<Vec<T>>
where
    F: Fn(Mpi<LocalChannel>) -> MpiResult<T> + Send + Sync,
    T: Send,
{
    assert!(size > 0);
    let shared = Arc::new(Shared {
        queues: (0..size)
            .map(|_| Queue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
    });
    let results: Vec<MpiResult<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|r| {
                let shared = shared.clone();
                let f = &f;
                s.spawn(move || {
                    let chan = LocalChannel {
                        rank: Rank(r),
                        size,
                        shared,
                    };
                    let (mpi, restored) = Mpi::init(chan)?;
                    debug_assert!(restored.is_none());
                    f(mpi)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Source, Tag};

    #[test]
    fn two_rank_ping() {
        let out = run_local(2, |mut mpi| {
            if mpi.rank() == Rank(0) {
                mpi.send(Rank(1), 5, b"hello")?;
                Ok(0usize)
            } else {
                let (src, tag, body) = mpi.recv(Source::Any, Tag::Any)?;
                assert_eq!(src, Rank(0));
                assert_eq!(tag, 5);
                assert_eq!(body.as_slice(), b"hello");
                Ok(body.len())
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 5]);
    }

    #[test]
    fn single_rank_world() {
        let out = run_local(1, |mut mpi| {
            mpi.send(Rank(0), 0, b"self")?; // self-send
            let (_, _, body) = mpi.recv(Source::Any, Tag::Any)?;
            Ok(body.as_slice().to_vec())
        })
        .unwrap();
        assert_eq!(out[0], b"self");
    }
}
