//! # mvr-mpi — the MPI-like library
//!
//! The message-passing layer of the MPICH-V2 reproduction: MPICH's channel
//! interface (§4.4) as the [`Channel`] trait, and on top of it the
//! protocol layer (eager + rendezvous with the MPICH 1.2.5 threshold),
//! tag/source matching with wildcards, nonblocking requests, probes, and
//! the classical collectives lowered onto point-to-point.
//!
//! The fault-tolerance protocol lives entirely *below* [`Channel`]
//! (in `mvr-core`/`mvr-runtime`): this layer is identical for the V2
//! runtime, the baselines and the in-process [`testing`] cluster —
//! mirroring the paper's "MPI implementation independence" requirement
//! (MPICH is never made aware of faults).
//!
//! ```
//! use mvr_mpi::testing::run_local;
//! use mvr_mpi::{ReduceOp, Source, Tag};
//!
//! let sums = run_local(4, |mut mpi| {
//!     let mine = vec![mpi.rank().0 as u64];
//!     let total = mpi.allreduce(ReduceOp::Sum, &mine)?;
//!     mpi.finalize()?;
//!     Ok(total[0])
//! })
//! .unwrap();
//! assert_eq!(sums, vec![6, 6, 6, 6]); // 0+1+2+3 on every rank
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod request;
pub mod testing;
pub mod wire;

pub use channel::{Channel, ChannelInfo};
pub use comm::{Mpi, RecvMsg};
pub use datatype::{decode_slice, encode_slice, reduce_into, ReduceOp, Reducible, Scalar};
pub use error::{MpiError, MpiResult};
pub use request::Request;
pub use wire::{Context, MpiFrame, Source, Tag, RNDV_THRESHOLD};
