//! The MPI library's wire format, carried opaquely inside the channel's
//! protocol messages.
//!
//! MPICH's protocol layer implements "the short, eager and rendez-vous
//! protocols" above the channel (§4.4). We implement eager (payload rides
//! with the envelope) and rendezvous (a request/clear-to-send handshake
//! precedes the payload) with the MPICH 1.2.5 default threshold of
//! 128 000 bytes — the protocol switch visible between 64 kB and 128 kB in
//! Fig. 10 of the paper.

use crate::error::{MpiError, MpiResult};
use mvr_core::Payload;
use serde::{Deserialize, Serialize};

/// Rendezvous threshold in bytes (MPICH 1.2.5 default). Payloads of this
/// size or larger use the rendezvous protocol.
pub const RNDV_THRESHOLD: usize = 128_000;

/// Matching context: separates user point-to-point traffic from internal
/// collective rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Context {
    /// User `send`/`recv` traffic.
    PointToPoint,
    /// Collective operation number `seq` (all ranks invoke collectives in
    /// the same order, so a per-process counter matches globally).
    Collective {
        /// Global collective sequence number.
        seq: u64,
    },
}

/// One MPI-layer message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiFrame {
    /// Complete message (short/eager protocols).
    Eager {
        /// Matching context.
        context: Context,
        /// User tag.
        tag: i32,
        /// Message body.
        body: Payload,
    },
    /// Rendezvous request: "I have `len` bytes for (context, tag)".
    RndvReq {
        /// Matching context.
        context: Context,
        /// User tag.
        tag: i32,
        /// Sender-local rendezvous id, echoed by the CTS.
        rndv_id: u64,
        /// Payload length, for receiver-side buffer planning.
        len: u64,
    },
    /// Clear-to-send: the receiver matched the rendezvous request.
    RndvCts {
        /// Echoed rendezvous id.
        rndv_id: u64,
    },
    /// The rendezvous payload.
    RndvData {
        /// Echoed rendezvous id.
        rndv_id: u64,
        /// Message body.
        body: Payload,
    },
}

impl MpiFrame {
    /// Serialize for the channel.
    pub fn encode(&self) -> Payload {
        Payload::from_vec(bincode::serialize(self).expect("MpiFrame serialization cannot fail"))
    }

    /// Deserialize from the channel.
    pub fn decode(bytes: &Payload) -> MpiResult<Self> {
        bincode::deserialize(bytes.as_slice())
            .map_err(|e| MpiError::Protocol(format!("bad MPI frame: {e}")))
    }
}

/// A wildcard-capable source selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Match a specific rank.
    Rank(mvr_core::Rank),
    /// `MPI_ANY_SOURCE`.
    Any,
}

impl Source {
    /// Does `r` satisfy this selector?
    #[inline]
    pub fn matches(&self, r: mvr_core::Rank) -> bool {
        match self {
            Source::Rank(s) => *s == r,
            Source::Any => true,
        }
    }
}

/// A wildcard-capable tag selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tag {
    /// Match a specific tag.
    Value(i32),
    /// `MPI_ANY_TAG`.
    Any,
}

impl Tag {
    /// Does `t` satisfy this selector?
    #[inline]
    pub fn matches(&self, t: i32) -> bool {
        match self {
            Tag::Value(v) => *v == t,
            Tag::Any => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::Rank;

    #[test]
    fn frame_roundtrip() {
        let frames = vec![
            MpiFrame::Eager {
                context: Context::PointToPoint,
                tag: 7,
                body: Payload::from_vec(vec![1, 2, 3]),
            },
            MpiFrame::RndvReq {
                context: Context::Collective { seq: 4 },
                tag: -1,
                rndv_id: 9,
                len: 1 << 20,
            },
            MpiFrame::RndvCts { rndv_id: 9 },
            MpiFrame::RndvData {
                rndv_id: 9,
                body: Payload::filled(0, 8),
            },
        ];
        for f in frames {
            let enc = f.encode();
            assert_eq!(MpiFrame::decode(&enc).unwrap(), f);
        }
    }

    #[test]
    fn decode_garbage_is_protocol_error() {
        let garbage = Payload::from_vec(vec![0xFF; 3]);
        assert!(matches!(
            MpiFrame::decode(&garbage),
            Err(MpiError::Protocol(_))
        ));
    }

    #[test]
    fn selectors_match() {
        assert!(Source::Any.matches(Rank(3)));
        assert!(Source::Rank(Rank(3)).matches(Rank(3)));
        assert!(!Source::Rank(Rank(3)).matches(Rank(4)));
        assert!(Tag::Any.matches(42));
        assert!(Tag::Value(42).matches(42));
        assert!(!Tag::Value(42).matches(43));
    }

    #[test]
    fn threshold_matches_mpich_125_default() {
        assert_eq!(RNDV_THRESHOLD, 128_000);
    }
}
