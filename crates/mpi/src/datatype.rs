//! Typed data helpers: encoding scalar slices for the byte-oriented MPI
//! layer, and reduction operators for the collectives.

use crate::error::{MpiError, MpiResult};

/// A fixed-width scalar that can cross the wire (little-endian).
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Append the little-endian encoding to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`Self::WIDTH`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("width checked by caller"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encode a scalar slice.
pub fn encode_slice<T: Scalar>(v: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * T::WIDTH);
    for x in v {
        x.write_le(&mut out);
    }
    out
}

/// Decode a scalar slice; errors if the byte count is not a multiple of
/// the width.
pub fn decode_slice<T: Scalar>(bytes: &[u8]) -> MpiResult<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpiError::Protocol(format!(
            "byte count {} not a multiple of scalar width {}",
            bytes.len(),
            T::WIDTH
        )));
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::read_le).collect())
}

/// Reduction operators (the `MPI_Op`s the workloads need).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

/// Element types that support the reduction operators.
pub trait Reducible: Scalar {
    /// Apply `op` to a pair.
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_ord {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                }
            }
        }
    )*};
}

impl_reducible_ord!(u8, i8, u16, i16, u32, i32, u64, i64);

macro_rules! impl_reducible_float {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Prod => a * b,
                }
            }
        }
    )*};
}

impl_reducible_float!(f32, f64);

/// Elementwise in-place reduction of `b` into `a`.
pub fn reduce_into<T: Reducible>(op: ReduceOp, a: &mut [T], b: &[T]) -> MpiResult<()> {
    if a.len() != b.len() {
        return Err(MpiError::Protocol(format!(
            "reduction length mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    for (x, y) in a.iter_mut().zip(b) {
        *x = T::reduce(op, *x, *y);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let v = vec![1.5f64, -2.25, 0.0, f64::MAX];
        let enc = encode_slice(&v);
        assert_eq!(enc.len(), 32);
        assert_eq!(decode_slice::<f64>(&enc).unwrap(), v);
    }

    #[test]
    fn roundtrip_various_types() {
        let v = vec![1u32, 2, 3];
        assert_eq!(decode_slice::<u32>(&encode_slice(&v)).unwrap(), v);
        let v = vec![-7i64, 8];
        assert_eq!(decode_slice::<i64>(&encode_slice(&v)).unwrap(), v);
        let v = vec![0.5f32];
        assert_eq!(decode_slice::<f32>(&encode_slice(&v)).unwrap(), v);
    }

    #[test]
    fn bad_length_rejected() {
        assert!(decode_slice::<f64>(&[0u8; 7]).is_err());
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(f64::reduce(ReduceOp::Sum, 1.0, 2.0), 3.0);
        assert_eq!(i32::reduce(ReduceOp::Max, -1, 2), 2);
        assert_eq!(i32::reduce(ReduceOp::Min, -1, 2), -1);
        assert_eq!(u32::reduce(ReduceOp::Prod, 3, 4), 12);
    }

    #[test]
    fn reduce_into_elementwise() {
        let mut a = vec![1.0f64, 2.0, 3.0];
        reduce_into(ReduceOp::Sum, &mut a, &[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
        assert!(reduce_into(ReduceOp::Sum, &mut a, &[1.0]).is_err());
    }
}
