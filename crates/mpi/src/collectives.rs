//! Collective operations, lowered onto point-to-point messages.
//!
//! MPICH-V2's design keeps MPICH's own collectives (implemented over
//! point-to-point) untouched; likewise everything here is expressed with
//! the p2p primitives of [`Mpi`], so the fault-tolerance protocol below
//! sees only ordinary messages. Algorithms are the classical ones:
//! binomial trees for broadcast/reduce, dissemination for barrier, a ring
//! for allgather and a pairwise shift exchange for alltoall.

use crate::channel::Channel;
use crate::comm::Mpi;
use crate::datatype::{decode_slice, encode_slice, reduce_into, ReduceOp, Reducible, Scalar};
use crate::error::{MpiError, MpiResult};
use crate::wire::{Source, Tag};
use mvr_core::Rank;

impl<C: Channel> Mpi<C> {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ p⌉ rounds).
    pub fn barrier(&mut self) -> MpiResult<()> {
        let ctx = self.next_collective();
        let size = self.size() as u64;
        let me = self.rank().0 as u64;
        let mut round = 0i32;
        let mut dist = 1u64;
        while dist < size {
            let dst = Rank(((me + dist) % size) as u32);
            let src = Rank(((me + size - dist) % size) as u32);
            self.sendrecv_ctx(dst, ctx, round, &[], Source::Rank(src), Tag::Value(round))?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast bytes from `root` (binomial tree). On non-roots the input
    /// is replaced by the broadcast value.
    pub fn bcast(&mut self, root: Rank, data: &mut Vec<u8>) -> MpiResult<()> {
        let ctx = self.next_collective();
        let size = self.size();
        if root.0 >= size {
            return Err(MpiError::InvalidArgument(format!(
                "bcast root {root} out of range"
            )));
        }
        if size == 1 {
            return Ok(());
        }
        let vrank = (self.rank().0 + size - root.0) % size;
        let unvrank = |v: u32| Rank((v + root.0) % size);

        // Receive from the parent (non-roots).
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask != 0 {
                let parent = unvrank(vrank - mask);
                let (_, _, body) = self.recv_ctx(Source::Rank(parent), ctx, Tag::Value(0))?;
                *data = body.as_slice().to_vec();
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < size {
                let child = unvrank(vrank + mask);
                self.send_ctx(child, ctx, 0, data)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Reduce scalar data to `root` (binomial tree). Returns the reduced
    /// vector on the root, `None` elsewhere.
    pub fn reduce<T: Reducible>(
        &mut self,
        root: Rank,
        op: ReduceOp,
        data: &[T],
    ) -> MpiResult<Option<Vec<T>>> {
        let ctx = self.next_collective();
        let size = self.size();
        if root.0 >= size {
            return Err(MpiError::InvalidArgument(format!(
                "reduce root {root} out of range"
            )));
        }
        let vrank = (self.rank().0 + size - root.0) % size;
        let unvrank = |v: u32| Rank((v + root.0) % size);
        let mut acc: Vec<T> = data.to_vec();
        let mut mask = 1u32;
        while mask < size {
            if vrank & mask != 0 {
                let parent = unvrank(vrank - mask);
                self.send_ctx(parent, ctx, 0, &encode_slice(&acc))?;
                return Ok(None);
            }
            if vrank + mask < size {
                let child = unvrank(vrank + mask);
                let (_, _, body) = self.recv_ctx(Source::Rank(child), ctx, Tag::Value(0))?;
                let other: Vec<T> = decode_slice(body.as_slice())?;
                reduce_into(op, &mut acc, &other)?;
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Allreduce: reduce to rank 0, then broadcast.
    pub fn allreduce<T: Reducible>(&mut self, op: ReduceOp, data: &[T]) -> MpiResult<Vec<T>> {
        let reduced = self.reduce(Rank(0), op, data)?;
        let mut bytes = reduced.map(|v| encode_slice(&v)).unwrap_or_default();
        self.bcast(Rank(0), &mut bytes)?;
        decode_slice(&bytes)
    }

    /// Gather every rank's bytes at `root` (linear). Returns, on the root,
    /// one entry per rank in rank order.
    pub fn gather(&mut self, root: Rank, bytes: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        let ctx = self.next_collective();
        let size = self.size();
        if self.rank() != root {
            self.send_ctx(root, ctx, 0, bytes)?;
            return Ok(None);
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); size as usize];
        out[root.idx()] = bytes.to_vec();
        for r in 0..size {
            if r == root.0 {
                continue;
            }
            let (_, _, body) = self.recv_ctx(Source::Rank(Rank(r)), ctx, Tag::Value(0))?;
            out[r as usize] = body.as_slice().to_vec();
        }
        Ok(Some(out))
    }

    /// Scatter per-rank byte vectors from `root` (linear). `parts` must be
    /// `Some` (with `size` entries) on the root, `None` elsewhere.
    pub fn scatter(&mut self, root: Rank, parts: Option<&[Vec<u8>]>) -> MpiResult<Vec<u8>> {
        let ctx = self.next_collective();
        let size = self.size();
        if self.rank() == root {
            let parts = parts.ok_or_else(|| {
                MpiError::InvalidArgument("scatter root must supply parts".into())
            })?;
            if parts.len() != size as usize {
                return Err(MpiError::InvalidArgument(format!(
                    "scatter needs {size} parts, got {}",
                    parts.len()
                )));
            }
            for r in 0..size {
                if r != root.0 {
                    self.send_ctx(Rank(r), ctx, 0, &parts[r as usize])?;
                }
            }
            Ok(parts[root.idx()].clone())
        } else {
            let (_, _, body) = self.recv_ctx(Source::Rank(root), ctx, Tag::Value(0))?;
            Ok(body.as_slice().to_vec())
        }
    }

    /// Allgather (ring): returns every rank's bytes in rank order.
    pub fn allgather(&mut self, bytes: &[u8]) -> MpiResult<Vec<Vec<u8>>> {
        let ctx = self.next_collective();
        let size = self.size();
        let me = self.rank().0;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); size as usize];
        out[me as usize] = bytes.to_vec();
        let right = Rank((me + 1) % size);
        let left = Rank((me + size - 1) % size);
        // In step s we forward the block that originated at (me - s).
        for s in 0..size.saturating_sub(1) {
            let send_block = ((me + size - s) % size) as usize;
            let recv_block = ((me + size - s - 1) % size) as usize;
            let payload = out[send_block].clone();
            let (_, _, body) = self.sendrecv_ctx(
                right,
                ctx,
                s as i32,
                &payload,
                Source::Rank(left),
                Tag::Value(s as i32),
            )?;
            out[recv_block] = body.as_slice().to_vec();
        }
        Ok(out)
    }

    /// All-to-all personalized exchange (pairwise shifts). `parts[r]` is
    /// sent to rank `r`; the result's entry `r` came from rank `r`.
    pub fn alltoall(&mut self, parts: &[Vec<u8>]) -> MpiResult<Vec<Vec<u8>>> {
        let ctx = self.next_collective();
        let size = self.size();
        if parts.len() != size as usize {
            return Err(MpiError::InvalidArgument(format!(
                "alltoall needs {size} parts, got {}",
                parts.len()
            )));
        }
        let me = self.rank().0;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); size as usize];
        out[me as usize] = parts[me as usize].clone();
        for shift in 1..size {
            let dst = Rank((me + shift) % size);
            let src = Rank((me + size - shift) % size);
            let (_, _, body) = self.sendrecv_ctx(
                dst,
                ctx,
                shift as i32,
                &parts[dst.idx()],
                Source::Rank(src),
                Tag::Value(shift as i32),
            )?;
            out[src.idx()] = body.as_slice().to_vec();
        }
        Ok(out)
    }

    /// Typed broadcast convenience.
    pub fn bcast_scalars<T: Scalar>(&mut self, root: Rank, data: &mut Vec<T>) -> MpiResult<()> {
        let mut bytes = encode_slice(data);
        self.bcast(root, &mut bytes)?;
        *data = decode_slice(&bytes)?;
        Ok(())
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `r` obtains the
    /// reduction over ranks `0..=r`. Hillis–Steele: ⌈log₂ p⌉ rounds of
    /// distance-doubling partial sums.
    pub fn scan<T: Reducible>(&mut self, op: ReduceOp, data: &[T]) -> MpiResult<Vec<T>> {
        let ctx = self.next_collective();
        let size = self.size();
        let me = self.rank().0;
        let mut acc: Vec<T> = data.to_vec();
        let mut dist = 1u32;
        let mut round = 0i32;
        while dist < size {
            let send_to = (me + dist < size).then(|| Rank(me + dist));
            let recv_from = (me >= dist).then(|| Rank(me - dist));
            let bytes = encode_slice(&acc);
            match (send_to, recv_from) {
                (Some(dst), Some(src)) => {
                    let (_, _, body) = self.sendrecv_ctx(
                        dst,
                        ctx,
                        round,
                        &bytes,
                        Source::Rank(src),
                        Tag::Value(round),
                    )?;
                    let other: Vec<T> = decode_slice(body.as_slice())?;
                    // Incoming partial covers lower ranks: fold on the left.
                    let mut merged = other;
                    reduce_into(op, &mut merged, &acc)?;
                    acc = merged;
                }
                (Some(dst), None) => self.send_ctx(dst, ctx, round, &bytes)?,
                (None, Some(src)) => {
                    let (_, _, body) = self.recv_ctx(Source::Rank(src), ctx, Tag::Value(round))?;
                    let other: Vec<T> = decode_slice(body.as_slice())?;
                    let mut merged = other;
                    reduce_into(op, &mut merged, &acc)?;
                    acc = merged;
                }
                (None, None) => {}
            }
            dist <<= 1;
            round += 1;
        }
        Ok(acc)
    }

    /// Reduce-scatter (`MPI_Reduce_scatter_block`): reduce `parts`
    /// elementwise across ranks, then rank `r` receives block `r`.
    /// Implemented as reduce-to-root + scatter.
    pub fn reduce_scatter<T: Reducible>(
        &mut self,
        op: ReduceOp,
        parts: &[Vec<T>],
    ) -> MpiResult<Vec<T>> {
        let size = self.size();
        if parts.len() != size as usize {
            return Err(MpiError::InvalidArgument(format!(
                "reduce_scatter needs {size} blocks, got {}",
                parts.len()
            )));
        }
        let flat: Vec<T> = parts.iter().flatten().copied().collect();
        let reduced = self.reduce(Rank(0), op, &flat)?;
        let block_lens: Vec<usize> = parts.iter().map(Vec::len).collect();
        let scattered = if self.rank() == Rank(0) {
            let r = reduced.expect("root has the reduction");
            let mut blocks = Vec::with_capacity(size as usize);
            let mut off = 0;
            for len in &block_lens {
                blocks.push(encode_slice(&r[off..off + len]));
                off += len;
            }
            self.scatter(Rank(0), Some(&blocks))?
        } else {
            self.scatter(Rank(0), None)?
        };
        decode_slice(&scattered)
    }
}
