//! MPI-layer errors.
//!
//! The fault-tolerance design requires that a killed process *unwinds*: all
//! MPI operations return [`MpiError::Killed`] once the daemon connection
//! dies, and well-behaved applications propagate it (our analog of the
//! process receiving a termination signal).

use std::fmt;

/// Errors surfaced by MPI operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// The hosting node was crashed (fail-stop); unwind now.
    Killed,
    /// Operation after `finalize`.
    Finalized,
    /// A malformed wire message (protocol bug or corruption).
    Protocol(String),
    /// Invalid argument (rank out of range, negative tag, ...).
    InvalidArgument(String),
    /// An operation that requires quiescence (e.g. a checkpoint site) was
    /// attempted with outstanding nonblocking requests.
    PendingRequests,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Killed => write!(f, "process was killed (fail-stop)"),
            MpiError::Finalized => write!(f, "MPI already finalized"),
            MpiError::Protocol(s) => write!(f, "protocol error: {s}"),
            MpiError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            MpiError::PendingRequests => {
                write!(
                    f,
                    "operation requires all nonblocking requests to be complete"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias used across the MPI layer.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MpiError::Killed.to_string().contains("killed"));
        assert!(MpiError::Protocol("bad header".into())
            .to_string()
            .contains("bad header"));
        assert!(MpiError::InvalidArgument("rank 9".into())
            .to_string()
            .contains("rank 9"));
    }
}
