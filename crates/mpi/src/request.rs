//! Nonblocking request handles.
//!
//! Posted receive requests participate in matching *passively*, in post
//! order, whenever the library pumps the channel (the MPI progress rule),
//! so completion is independent of the order in which requests are
//! waited on, and symmetric rendezvous exchanges cannot deadlock.

use crate::wire::{Context, Source, Tag};

/// Internal state of a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ReqKind {
    /// Already complete (eager/self sends).
    Done,
    /// A rendezvous send waiting for its clear-to-send.
    RndvSend {
        /// The rendezvous id to watch for completion.
        rndv_id: u64,
    },
    /// A receive to be matched at wait time.
    Recv {
        /// Source selector.
        src: Source,
        /// Tag selector.
        tag: Tag,
        /// Matching context.
        context: Context,
    },
}

/// A nonblocking operation handle. Complete it with
/// [`Mpi::wait`](crate::comm::Mpi::wait) or
/// [`Mpi::waitall`](crate::comm::Mpi::waitall).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Post order (waitall completes in this order).
    pub(crate) seq: u64,
    pub(crate) kind: ReqKind,
}

impl Request {
    /// Whether this request is trivially complete (no wait needed beyond
    /// bookkeeping).
    pub fn is_send(&self) -> bool {
        matches!(self.kind, ReqKind::Done | ReqKind::RndvSend { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_requests_identified() {
        let done = Request {
            seq: 0,
            kind: ReqKind::Done,
        };
        assert!(done.is_send());
        let recv = Request {
            seq: 1,
            kind: ReqKind::Recv {
                src: Source::Any,
                tag: Tag::Any,
                context: Context::PointToPoint,
            },
        };
        assert!(!recv.is_send());
    }
}
