//! The MPI communicator: point-to-point semantics (matching, wildcards,
//! eager/rendezvous, nonblocking requests, probes) over any [`Channel`].
//!
//! Progress rule: every blocking entry point pumps the channel, and
//! incoming frames are matched against *posted* receive requests first
//! (in post order), falling back to the unexpected queue. This is what
//! makes symmetric rendezvous exchanges deadlock-free: while a process
//! waits for its own clear-to-send, its posted receives keep granting the
//! peer's rendezvous requests.

use crate::channel::{Channel, ChannelInfo};
use crate::error::{MpiError, MpiResult};
use crate::request::{ReqKind, Request};
use crate::wire::{Context, MpiFrame, Source, Tag, RNDV_THRESHOLD};
use mvr_core::{Payload, Rank};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// An unexpected (arrived-before-matched) message.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum UnexpKind {
    Eager(Payload),
    Rndv { rndv_id: u64 },
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Unexpected {
    src: Rank,
    context: Context,
    tag: i32,
    kind: UnexpKind,
}

/// The checkpointable MPI-library state.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct MpiLibState {
    unexpected: VecDeque<Unexpected>,
    self_queue: VecDeque<(Context, i32, Payload)>,
    collective_seq: u64,
    next_rndv_id: u64,
    next_req_seq: u64,
}

/// A received message: source, tag, body.
pub type RecvMsg = (Rank, i32, Payload);

/// State of a posted receive request.
#[derive(Clone, Debug)]
enum PostState {
    /// Not yet matched.
    Waiting,
    /// Matched a rendezvous request; CTS sent; awaiting the data.
    CtsSent { rndv_id: u64, src: Rank, tag: i32 },
    /// Complete.
    Done(RecvMsg),
}

#[derive(Clone, Debug)]
struct PostedRecv {
    seq: u64,
    src: Source,
    tag: Tag,
    context: Context,
    state: PostState,
}

/// The MPI handle of one process.
///
/// Single-threaded by design (one MPI process per OS thread, as in
/// MPICH's `ch_p4` device).
pub struct Mpi<C: Channel> {
    chan: C,
    rank: Rank,
    size: u32,
    finalized: bool,
    st: MpiLibState,
    /// Posted receive requests, in post order.
    posted: Vec<PostedRecv>,
    /// Outstanding rendezvous sends: id → (dst, payload).
    pending_rndv: HashMap<u64, (Rank, Payload)>,
    /// Rendezvous sends whose data has been shipped.
    completed_rndv: HashSet<u64>,
}

impl<C: Channel> Mpi<C> {
    /// Initialize over a channel. Returns the handle and, when resuming
    /// from a checkpoint, the restored application state.
    pub fn init(mut chan: C) -> MpiResult<(Self, Option<Payload>)> {
        let ChannelInfo {
            rank,
            size,
            restored_mpi_state,
            restored_app_state,
        } = chan.init()?;
        let st = match restored_mpi_state {
            Some(bytes) => bincode::deserialize(bytes.as_slice())
                .map_err(|e| MpiError::Protocol(format!("bad MPI state in checkpoint: {e}")))?,
            None => MpiLibState::default(),
        };
        Ok((
            Mpi {
                chan,
                rank,
                size,
                finalized: false,
                st,
                posted: Vec::new(),
                pending_rndv: HashMap::new(),
                completed_rndv: HashSet::new(),
            },
            restored_app_state,
        ))
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Finish the execution (`PIiFinish`).
    pub fn finalize(mut self) -> MpiResult<()> {
        self.check_live()?;
        self.finalized = true;
        self.chan.finish()
    }

    fn check_live(&self) -> MpiResult<()> {
        if self.finalized {
            Err(MpiError::Finalized)
        } else {
            Ok(())
        }
    }

    fn check_rank(&self, r: Rank) -> MpiResult<()> {
        if r.0 >= self.size {
            return Err(MpiError::InvalidArgument(format!(
                "rank {r} out of 0..{}",
                self.size
            )));
        }
        Ok(())
    }

    fn check_tag(&self, tag: i32) -> MpiResult<()> {
        if tag < 0 {
            return Err(MpiError::InvalidArgument(format!("negative tag {tag}")));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Blocking point-to-point
    // ------------------------------------------------------------------

    /// Blocking standard send (eager below the rendezvous threshold).
    pub fn send(&mut self, dst: Rank, tag: i32, bytes: &[u8]) -> MpiResult<()> {
        self.check_live()?;
        self.check_rank(dst)?;
        self.check_tag(tag)?;
        self.send_internal(dst, Context::PointToPoint, tag, Payload::from(bytes))
    }

    /// Blocking receive with wildcards. Returns (source, tag, body).
    pub fn recv(&mut self, src: Source, tag: Tag) -> MpiResult<RecvMsg> {
        self.check_live()?;
        let seq = self.post_recv(src, tag, Context::PointToPoint)?;
        self.wait_posted(seq)
    }

    /// Combined send+receive that cannot deadlock against its mirror image
    /// (posts the receive before starting the send).
    pub fn sendrecv(
        &mut self,
        dst: Rank,
        send_tag: i32,
        bytes: &[u8],
        src: Source,
        recv_tag: Tag,
    ) -> MpiResult<RecvMsg> {
        self.check_live()?;
        self.check_rank(dst)?;
        self.check_tag(send_tag)?;
        self.sendrecv_ctx(dst, Context::PointToPoint, send_tag, bytes, src, recv_tag)
    }

    // ------------------------------------------------------------------
    // Nonblocking
    // ------------------------------------------------------------------

    /// Nonblocking send. Eager payloads are shipped immediately; large
    /// payloads start a rendezvous completed by [`wait`](Self::wait) (or
    /// passively, whenever the library pumps the channel).
    pub fn isend(&mut self, dst: Rank, tag: i32, bytes: &[u8]) -> MpiResult<Request> {
        self.check_live()?;
        self.check_rank(dst)?;
        self.check_tag(tag)?;
        let seq = self.next_seq();
        let kind = self.start_send(dst, Context::PointToPoint, tag, Payload::from(bytes))?;
        Ok(Request { seq, kind })
    }

    /// Nonblocking receive: posts a matching request that participates in
    /// matching immediately (MPI posted-receive semantics).
    pub fn irecv(&mut self, src: Source, tag: Tag) -> MpiResult<Request> {
        self.check_live()?;
        let seq = self.post_recv(src, tag, Context::PointToPoint)?;
        Ok(Request {
            seq,
            kind: ReqKind::Recv {
                src,
                tag,
                context: Context::PointToPoint,
            },
        })
    }

    /// Complete one request. Returns the message for receives.
    pub fn wait(&mut self, req: Request) -> MpiResult<Option<RecvMsg>> {
        self.check_live()?;
        match req.kind {
            ReqKind::Done => Ok(None),
            ReqKind::RndvSend { rndv_id } => {
                while !self.completed_rndv.contains(&rndv_id) {
                    self.pump()?;
                }
                self.completed_rndv.remove(&rndv_id);
                Ok(None)
            }
            ReqKind::Recv { .. } => Ok(Some(self.wait_posted(req.seq)?)),
        }
    }

    /// Complete a set of requests; returns the receive results aligned
    /// with the input order. (Requests complete passively as frames
    /// arrive, so the completion order here is immaterial.)
    pub fn waitall(&mut self, reqs: Vec<Request>) -> MpiResult<Vec<Option<RecvMsg>>> {
        self.check_live()?;
        let mut out = Vec::with_capacity(reqs.len());
        for r in reqs {
            out.push(self.wait(r)?);
        }
        Ok(out)
    }

    /// Nonblocking completion test. Returns the message for completed
    /// receives, `Ok(Some(None))`-style via the outer Option:
    /// `None` = not complete (request still pending, pass it back in),
    /// `Some(x)` = complete with receive payload `x`.
    pub fn test(&mut self, req: &Request) -> MpiResult<Option<Option<RecvMsg>>> {
        self.check_live()?;
        // Opportunistically drain whatever the daemon already buffered.
        while self.chan.nprobe()? {
            self.pump()?;
        }
        match &req.kind {
            ReqKind::Done => Ok(Some(None)),
            ReqKind::RndvSend { rndv_id } => {
                if self.completed_rndv.remove(rndv_id) {
                    Ok(Some(None))
                } else {
                    Ok(None)
                }
            }
            ReqKind::Recv { .. } => {
                let idx = self
                    .posted
                    .iter()
                    .position(|p| p.seq == req.seq)
                    .ok_or_else(|| {
                        MpiError::Protocol(format!("unknown receive request {}", req.seq))
                    })?;
                if matches!(self.posted[idx].state, PostState::Done(_)) {
                    let PostState::Done(m) = self.posted.remove(idx).state else {
                        unreachable!()
                    };
                    Ok(Some(Some(m)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Probes
    // ------------------------------------------------------------------

    /// Nonblocking probe: is a matching message available?
    /// (`MPI_Iprobe`.) Posted requests are not disturbed.
    pub fn iprobe(&mut self, src: Source, tag: Tag) -> MpiResult<bool> {
        self.check_live()?;
        if self.find_unmatched(src, tag).is_some() {
            return Ok(true);
        }
        // Pull everything the daemon already has, then re-check. Each
        // unsuccessful daemon probe is a logged nondeterministic event.
        while self.chan.nprobe()? {
            self.pump()?;
            if self.find_unmatched(src, tag).is_some() {
                return Ok(true);
            }
        }
        Ok(self.find_unmatched(src, tag).is_some())
    }

    /// Blocking probe (`MPI_Probe`): wait until a matching message exists,
    /// without receiving it.
    pub fn probe(&mut self, src: Source, tag: Tag) -> MpiResult<()> {
        loop {
            if self.iprobe(src, tag)? {
                return Ok(());
            }
            // Blocking pull of at least one frame.
            self.pump()?;
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint sites
    // ------------------------------------------------------------------

    /// Cooperative checkpoint site (our Condor substitution — DESIGN.md):
    /// if the daemon ordered a checkpoint, serialize the MPI-library state
    /// plus the provided application state, and commit. Must be called
    /// with no outstanding nonblocking requests.
    pub fn checkpoint_site(&mut self, app_state: &[u8]) -> MpiResult<bool> {
        self.check_live()?;
        if !self.chan.checkpoint_pending()? {
            return Ok(false);
        }
        if !self.pending_rndv.is_empty() || !self.posted.is_empty() {
            return Err(MpiError::PendingRequests);
        }
        let mpi_state = Payload::from_vec(
            bincode::serialize(&self.st).expect("MPI state serialization cannot fail"),
        );
        self.chan
            .commit_checkpoint(mpi_state, Payload::from(app_state))?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Collective support (used by collectives.rs)
    // ------------------------------------------------------------------

    /// Allocate the next collective context (all ranks call collectives in
    /// the same order, so the counter matches globally).
    pub(crate) fn next_collective(&mut self) -> Context {
        let c = Context::Collective {
            seq: self.st.collective_seq,
        };
        self.st.collective_seq += 1;
        c
    }

    /// Collective-context send (same protocol selection as user sends).
    pub(crate) fn send_ctx(
        &mut self,
        dst: Rank,
        context: Context,
        tag: i32,
        bytes: &[u8],
    ) -> MpiResult<()> {
        self.send_internal(dst, context, tag, Payload::from(bytes))
    }

    /// Collective-context receive.
    pub(crate) fn recv_ctx(
        &mut self,
        src: Source,
        context: Context,
        tag: Tag,
    ) -> MpiResult<RecvMsg> {
        let seq = self.post_recv(src, tag, context)?;
        self.wait_posted(seq)
    }

    /// Collective-context exchange (deadlock-free for large payloads).
    pub(crate) fn sendrecv_ctx(
        &mut self,
        dst: Rank,
        context: Context,
        send_tag: i32,
        bytes: &[u8],
        src: Source,
        recv_tag: Tag,
    ) -> MpiResult<RecvMsg> {
        let rseq = self.post_recv(src, recv_tag, context)?;
        let send_kind = self.start_send(dst, context, send_tag, Payload::from(bytes))?;
        let m = self.wait_posted(rseq)?;
        if let ReqKind::RndvSend { rndv_id } = send_kind {
            while !self.completed_rndv.contains(&rndv_id) {
                self.pump()?;
            }
            self.completed_rndv.remove(&rndv_id);
        }
        Ok(m)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn next_seq(&mut self) -> u64 {
        let s = self.st.next_req_seq;
        self.st.next_req_seq += 1;
        s
    }

    /// Start a send; returns how it completes.
    fn start_send(
        &mut self,
        dst: Rank,
        context: Context,
        tag: i32,
        body: Payload,
    ) -> MpiResult<ReqKind> {
        if dst == self.rank {
            self.st.self_queue.push_back((context, tag, body));
            // A self-send may satisfy an already-posted receive.
            self.match_self_queue();
            return Ok(ReqKind::Done);
        }
        if body.len() < RNDV_THRESHOLD {
            self.chan
                .bsend(dst, MpiFrame::Eager { context, tag, body }.encode())?;
            return Ok(ReqKind::Done);
        }
        let rndv_id = self.st.next_rndv_id;
        self.st.next_rndv_id += 1;
        self.chan.bsend(
            dst,
            MpiFrame::RndvReq {
                context,
                tag,
                rndv_id,
                len: body.len() as u64,
            }
            .encode(),
        )?;
        self.pending_rndv.insert(rndv_id, (dst, body));
        Ok(ReqKind::RndvSend { rndv_id })
    }

    /// Blocking send: start, then pump to completion.
    fn send_internal(
        &mut self,
        dst: Rank,
        context: Context,
        tag: i32,
        body: Payload,
    ) -> MpiResult<()> {
        match self.start_send(dst, context, tag, body)? {
            ReqKind::Done => Ok(()),
            ReqKind::RndvSend { rndv_id } => {
                while !self.completed_rndv.contains(&rndv_id) {
                    self.pump()?;
                }
                self.completed_rndv.remove(&rndv_id);
                Ok(())
            }
            ReqKind::Recv { .. } => unreachable!("start_send never returns Recv"),
        }
    }

    /// Post a receive request: try the self queue and the unexpected queue
    /// immediately, then enroll for passive matching.
    fn post_recv(&mut self, src: Source, tag: Tag, context: Context) -> MpiResult<u64> {
        let seq = self.next_seq();
        let mut entry = PostedRecv {
            seq,
            src,
            tag,
            context,
            state: PostState::Waiting,
        };

        // Self queue first (a self-send is always "arrived").
        if src.matches(self.rank) {
            if let Some(i) = self
                .st
                .self_queue
                .iter()
                .position(|(c, t, _)| *c == context && tag.matches(*t))
            {
                let (_, t, body) = self.st.self_queue.remove(i).expect("index valid");
                entry.state = PostState::Done((self.rank, t, body));
                self.posted.push(entry);
                return Ok(seq);
            }
        }
        // Unexpected queue, in arrival order.
        if let Some(i) = self
            .st
            .unexpected
            .iter()
            .position(|u| src.matches(u.src) && tag.matches(u.tag) && u.context == context)
        {
            let u = self.st.unexpected.remove(i).expect("index valid");
            match u.kind {
                UnexpKind::Eager(body) => entry.state = PostState::Done((u.src, u.tag, body)),
                UnexpKind::Rndv { rndv_id } => {
                    self.chan
                        .bsend(u.src, MpiFrame::RndvCts { rndv_id }.encode())?;
                    entry.state = PostState::CtsSent {
                        rndv_id,
                        src: u.src,
                        tag: u.tag,
                    };
                }
            }
        }
        self.posted.push(entry);
        Ok(seq)
    }

    /// Match newly-queued self-sends against posted requests.
    fn match_self_queue(&mut self) {
        for p in self.posted.iter_mut() {
            if !matches!(p.state, PostState::Waiting) || !p.src.matches(self.rank) {
                continue;
            }
            if let Some(i) = self
                .st
                .self_queue
                .iter()
                .position(|(c, t, _)| *c == p.context && p.tag.matches(*t))
            {
                let (_, t, body) = self.st.self_queue.remove(i).expect("index valid");
                p.state = PostState::Done((self.rank, t, body));
            }
        }
    }

    /// Block until the posted request `seq` completes, then return it.
    fn wait_posted(&mut self, seq: u64) -> MpiResult<RecvMsg> {
        loop {
            let idx = self
                .posted
                .iter()
                .position(|p| p.seq == seq)
                .ok_or_else(|| MpiError::Protocol(format!("unknown receive request {seq}")))?;
            if matches!(self.posted[idx].state, PostState::Done(_)) {
                let PostState::Done(m) = self.posted.remove(idx).state else {
                    unreachable!()
                };
                return Ok(m);
            }
            self.pump()?;
        }
    }

    /// Is there an unmatched (not claimed by a posted request) message
    /// satisfying the selectors? Used by probes.
    fn find_unmatched(&self, src: Source, tag: Tag) -> Option<()> {
        if src.matches(self.rank)
            && self
                .st
                .self_queue
                .iter()
                .any(|(c, t, _)| *c == Context::PointToPoint && tag.matches(*t))
        {
            return Some(());
        }
        self.st
            .unexpected
            .iter()
            .find(|u| {
                src.matches(u.src) && tag.matches(u.tag) && u.context == Context::PointToPoint
            })
            .map(|_| ())
    }

    /// Read one frame from the channel and route it: posted requests first
    /// (post order), then the unexpected queue.
    fn pump(&mut self) -> MpiResult<()> {
        let (from, bytes) = self.chan.brecv()?;
        match MpiFrame::decode(&bytes)? {
            MpiFrame::Eager { context, tag, body } => {
                if let Some(p) = self.posted.iter_mut().find(|p| {
                    matches!(p.state, PostState::Waiting)
                        && p.context == context
                        && p.src.matches(from)
                        && p.tag.matches(tag)
                }) {
                    p.state = PostState::Done((from, tag, body));
                } else {
                    self.st.unexpected.push_back(Unexpected {
                        src: from,
                        context,
                        tag,
                        kind: UnexpKind::Eager(body),
                    });
                }
                Ok(())
            }
            MpiFrame::RndvReq {
                context,
                tag,
                rndv_id,
                len: _,
            } => {
                let matched = self.posted.iter().position(|p| {
                    matches!(p.state, PostState::Waiting)
                        && p.context == context
                        && p.src.matches(from)
                        && p.tag.matches(tag)
                });
                match matched {
                    Some(i) => {
                        self.chan
                            .bsend(from, MpiFrame::RndvCts { rndv_id }.encode())?;
                        self.posted[i].state = PostState::CtsSent {
                            rndv_id,
                            src: from,
                            tag,
                        };
                    }
                    None => self.st.unexpected.push_back(Unexpected {
                        src: from,
                        context,
                        tag,
                        kind: UnexpKind::Rndv { rndv_id },
                    }),
                }
                Ok(())
            }
            MpiFrame::RndvCts { rndv_id } => {
                let (dst, body) = self
                    .pending_rndv
                    .remove(&rndv_id)
                    .ok_or_else(|| MpiError::Protocol(format!("CTS for unknown rndv {rndv_id}")))?;
                self.chan
                    .bsend(dst, MpiFrame::RndvData { rndv_id, body }.encode())?;
                self.completed_rndv.insert(rndv_id);
                Ok(())
            }
            MpiFrame::RndvData { rndv_id, body } => {
                let p = self
                    .posted
                    .iter_mut()
                    .find(|p| matches!(p.state, PostState::CtsSent { rndv_id: id, .. } if id == rndv_id))
                    .ok_or_else(|| {
                        MpiError::Protocol(format!("rendezvous data {rndv_id} without CTS"))
                    })?;
                let PostState::CtsSent { src, tag, .. } = p.state else {
                    unreachable!()
                };
                p.state = PostState::Done((src, tag, body));
                Ok(())
            }
        }
    }
}
