//! MPI-layer semantics tests over the local test cluster: matching rules,
//! wildcards, ordering, rendezvous, nonblocking requests, probes and every
//! collective, across a range of world sizes (including non-powers of two).

use mvr_core::Rank;
use mvr_mpi::testing::run_local;
use mvr_mpi::{MpiError, ReduceOp, Source, Tag, RNDV_THRESHOLD};

#[test]
fn tag_matching_pulls_later_message_first() {
    run_local(2, |mut mpi| {
        if mpi.rank() == Rank(0) {
            mpi.send(Rank(1), 1, b"first")?;
            mpi.send(Rank(1), 2, b"second")?;
        } else {
            // Ask for tag 2 first: tag 1 must be queued as unexpected.
            let (_, t, body) = mpi.recv(Source::Any, Tag::Value(2))?;
            assert_eq!((t, body.as_slice()), (2, &b"second"[..]));
            let (_, t, body) = mpi.recv(Source::Any, Tag::Value(1))?;
            assert_eq!((t, body.as_slice()), (1, &b"first"[..]));
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn same_tag_messages_are_non_overtaking() {
    run_local(2, |mut mpi| {
        if mpi.rank() == Rank(0) {
            for i in 0..50u32 {
                mpi.send(Rank(1), 0, &i.to_le_bytes())?;
            }
        } else {
            for i in 0..50u32 {
                let (_, _, body) = mpi.recv(Source::Rank(Rank(0)), Tag::Value(0))?;
                assert_eq!(u32::from_le_bytes(body.as_slice().try_into().unwrap()), i);
            }
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn any_source_receives_from_all() {
    let got = run_local(4, |mut mpi| {
        if mpi.rank() == Rank(0) {
            let mut froms = Vec::new();
            for _ in 0..3 {
                let (src, _, _) = mpi.recv(Source::Any, Tag::Any)?;
                froms.push(src.0);
            }
            froms.sort_unstable();
            mpi.finalize()?;
            Ok(froms)
        } else {
            mpi.send(Rank(0), 9, b"x")?;
            mpi.finalize()?;
            Ok(vec![])
        }
    })
    .unwrap();
    assert_eq!(got[0], vec![1, 2, 3]);
}

#[test]
fn self_send_roundtrip() {
    run_local(3, |mut mpi| {
        let me = mpi.rank();
        mpi.send(me, 3, b"loop")?;
        let (src, tag, body) = mpi.recv(Source::Rank(me), Tag::Value(3))?;
        assert_eq!((src, tag, body.as_slice()), (me, 3, &b"loop"[..]));
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn rendezvous_large_messages() {
    let n = RNDV_THRESHOLD + 4096;
    run_local(2, |mut mpi| {
        if mpi.rank() == Rank(0) {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            mpi.send(Rank(1), 0, &data)?;
        } else {
            let (_, _, body) = mpi.recv(Source::Rank(Rank(0)), Tag::Value(0))?;
            assert_eq!(body.len(), n);
            assert!(body
                .as_slice()
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i % 251) as u8));
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn symmetric_large_sendrecv_does_not_deadlock() {
    let n = RNDV_THRESHOLD * 2;
    run_local(2, |mut mpi| {
        let me = mpi.rank();
        let peer = Rank(1 - me.0);
        let data = vec![me.0 as u8; n];
        let (_, _, body) = mpi.sendrecv(peer, 0, &data, Source::Rank(peer), Tag::Value(0))?;
        assert_eq!(body.len(), n);
        assert!(body.as_slice().iter().all(|&b| b == peer.0 as u8));
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn isend_irecv_waitall_pattern() {
    // The Fig. 9 communication pattern: 10 isends + 10 irecvs + waitall.
    run_local(2, |mut mpi| {
        let me = mpi.rank();
        let peer = Rank(1 - me.0);
        let mut reqs = Vec::new();
        for i in 0..10i32 {
            reqs.push(mpi.isend(peer, i, &[me.0 as u8; 64])?);
        }
        for i in 0..10i32 {
            reqs.push(mpi.irecv(Source::Rank(peer), Tag::Value(i))?);
        }
        let results = mpi.waitall(reqs)?;
        let received = results.iter().filter(|r| r.is_some()).count();
        assert_eq!(received, 10);
        for (i, r) in results[10..].iter().enumerate() {
            let (src, tag, body) = r.as_ref().unwrap();
            assert_eq!(*src, peer);
            assert_eq!(*tag, i as i32);
            assert_eq!(body.len(), 64);
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn nonblocking_rendezvous_both_ways() {
    let n = RNDV_THRESHOLD + 1;
    run_local(2, |mut mpi| {
        let me = mpi.rank();
        let peer = Rank(1 - me.0);
        let s = mpi.isend(peer, 0, &vec![me.0 as u8; n])?;
        let r = mpi.irecv(Source::Rank(peer), Tag::Value(0))?;
        let out = mpi.waitall(vec![s, r])?;
        let body = &out[1].as_ref().unwrap().2;
        assert_eq!(body.len(), n);
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn iprobe_and_blocking_probe() {
    run_local(2, |mut mpi| {
        if mpi.rank() == Rank(0) {
            // Probe before anything is sent: must be false.
            assert!(!mpi.iprobe(Source::Any, Tag::Any)?);
            mpi.send(Rank(1), 1, b"go")?;
            // Now block until the reply is observable, then receive it.
            mpi.probe(Source::Rank(Rank(1)), Tag::Value(2))?;
            assert!(mpi.iprobe(Source::Rank(Rank(1)), Tag::Value(2))?);
            let (_, _, body) = mpi.recv(Source::Rank(Rank(1)), Tag::Value(2))?;
            assert_eq!(body.as_slice(), b"done");
        } else {
            let (_, _, _) = mpi.recv(Source::Any, Tag::Any)?;
            mpi.send(Rank(0), 2, b"done")?;
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn collectives_across_world_sizes() {
    for size in [1u32, 2, 3, 4, 5, 7, 8] {
        // Barrier completes.
        run_local(size, |mut mpi| {
            mpi.barrier()?;
            mpi.barrier()?;
            Ok(())
        })
        .unwrap();

        // Bcast from every possible root.
        for root in 0..size {
            let out = run_local(size, move |mut mpi| {
                let mut data = if mpi.rank() == Rank(root) {
                    format!("root={root}").into_bytes()
                } else {
                    Vec::new()
                };
                mpi.bcast(Rank(root), &mut data)?;
                Ok(data)
            })
            .unwrap();
            for v in out {
                assert_eq!(v, format!("root={root}").into_bytes());
            }
        }

        // Reduce + allreduce.
        let out = run_local(size, |mut mpi| {
            let mine = vec![mpi.rank().0 as u64, 1];
            let red = mpi.reduce(Rank(0), ReduceOp::Sum, &mine)?;
            let all = mpi.allreduce(ReduceOp::Sum, &mine)?;
            Ok((red, all))
        })
        .unwrap();
        let expected_sum: u64 = (0..size as u64).sum();
        for (r, (red, all)) in out.into_iter().enumerate() {
            assert_eq!(all, vec![expected_sum, size as u64]);
            if r == 0 {
                assert_eq!(red.unwrap(), vec![expected_sum, size as u64]);
            } else {
                assert!(red.is_none());
            }
        }

        // Gather / scatter.
        let out = run_local(size, |mut mpi| {
            let mine = vec![mpi.rank().0 as u8; 3];
            let gathered = mpi.gather(Rank(0), &mine)?;
            let parts: Option<Vec<Vec<u8>>> = if mpi.rank() == Rank(0) {
                Some((0..mpi.size()).map(|r| vec![r as u8 + 100]).collect())
            } else {
                None
            };
            let part = mpi.scatter(Rank(0), parts.as_deref())?;
            Ok((gathered, part))
        })
        .unwrap();
        for (r, (g, part)) in out.into_iter().enumerate() {
            assert_eq!(part, vec![r as u8 + 100]);
            if r == 0 {
                let g = g.unwrap();
                for (i, v) in g.iter().enumerate() {
                    assert_eq!(*v, vec![i as u8; 3]);
                }
            }
        }

        // Allgather / alltoall.
        let out = run_local(size, |mut mpi| {
            let mine = vec![mpi.rank().0 as u8 + 1];
            let ag = mpi.allgather(&mine)?;
            let parts: Vec<Vec<u8>> = (0..mpi.size())
                .map(|d| vec![mpi.rank().0 as u8, d as u8])
                .collect();
            let a2a = mpi.alltoall(&parts)?;
            Ok((ag, a2a))
        })
        .unwrap();
        for (me, (ag, a2a)) in out.into_iter().enumerate() {
            for (i, v) in ag.iter().enumerate() {
                assert_eq!(
                    *v,
                    vec![i as u8 + 1],
                    "allgather wrong at size={size} rank={me}"
                );
            }
            for (src, v) in a2a.iter().enumerate() {
                assert_eq!(
                    *v,
                    vec![src as u8, me as u8],
                    "alltoall wrong at size={size} rank={me}"
                );
            }
        }
    }
}

#[test]
fn large_collective_payloads_use_rendezvous() {
    let n = RNDV_THRESHOLD + 123;
    let out = run_local(4, move |mut mpi| {
        let mut data = if mpi.rank() == Rank(0) {
            vec![7u8; n]
        } else {
            Vec::new()
        };
        mpi.bcast(Rank(0), &mut data)?;
        let ag = mpi.allgather(&vec![mpi.rank().0 as u8; n])?;
        Ok((data.len(), ag.iter().map(Vec::len).sum::<usize>()))
    })
    .unwrap();
    for (b, agsum) in out {
        assert_eq!(b, n);
        assert_eq!(agsum, 4 * n);
    }
}

#[test]
fn invalid_arguments_rejected() {
    run_local(2, |mut mpi| {
        assert!(matches!(
            mpi.send(Rank(9), 0, b"x"),
            Err(MpiError::InvalidArgument(_))
        ));
        assert!(matches!(
            mpi.send(Rank(1), -3, b"x"),
            Err(MpiError::InvalidArgument(_))
        ));
        assert!(matches!(
            mpi.bcast(Rank(9), &mut vec![]),
            Err(MpiError::InvalidArgument(_))
        ));
        let parts = vec![vec![0u8]; 1]; // wrong count
        if mpi.rank() == Rank(0) {
            assert!(matches!(
                mpi.scatter(Rank(0), Some(&parts)),
                Err(MpiError::InvalidArgument(_))
            ));
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn finalize_then_use_errors() {
    // finalize() consumes the handle, so "use after finalize" is mostly a
    // compile-time impossibility; verify the runtime flag via two handles
    // is unnecessary — just verify finalize succeeds everywhere.
    run_local(3, |mut mpi| {
        mpi.barrier()?;
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn stress_many_small_messages_all_pairs() {
    let out = run_local(4, |mut mpi| {
        let size = mpi.size();
        let me = mpi.rank();
        let rounds = 200u32;
        let mut total = 0u64;
        for round in 0..rounds {
            for dst in 0..size {
                if Rank(dst) != me {
                    mpi.send(Rank(dst), (round % 7) as i32, &round.to_le_bytes())?;
                }
            }
            for _ in 0..size - 1 {
                let (_, _, body) = mpi.recv(Source::Any, Tag::Any)?;
                total += u32::from_le_bytes(body.as_slice().try_into().unwrap()) as u64;
            }
        }
        mpi.finalize()?;
        Ok(total)
    })
    .unwrap();
    let expected: u64 = (0..200u64).map(|r| r * 3).sum();
    for t in out {
        assert_eq!(t, expected);
    }
}

#[test]
fn scan_computes_inclusive_prefixes() {
    for size in [1u32, 2, 3, 5, 8] {
        let out = run_local(size, |mut mpi| {
            let mine = vec![(mpi.rank().0 as u64 + 1), 10];
            let pre = mpi.scan(ReduceOp::Sum, &mine)?;
            Ok(pre)
        })
        .unwrap();
        for (r, v) in out.into_iter().enumerate() {
            let expect: u64 = (1..=r as u64 + 1).sum();
            assert_eq!(v, vec![expect, 10 * (r as u64 + 1)], "size={size} rank={r}");
        }
    }
}

#[test]
fn reduce_scatter_distributes_blocks() {
    let out = run_local(4, |mut mpi| {
        // Block b = [rank*10 + b; 2].
        let parts: Vec<Vec<u64>> = (0..4)
            .map(|b| vec![mpi.rank().0 as u64 * 10 + b as u64; 2])
            .collect();
        mpi.reduce_scatter(ReduceOp::Sum, &parts)
    })
    .unwrap();
    for (r, block) in out.into_iter().enumerate() {
        // Sum over ranks of (rank*10 + r) = 60 + 4r.
        let expect = 60 + 4 * r as u64;
        assert_eq!(block, vec![expect, expect], "rank {r}");
    }
}

#[test]
fn scan_with_large_payloads() {
    let n = RNDV_THRESHOLD / 8 + 64; // force rendezvous in scan rounds
    let out = run_local(3, move |mut mpi| {
        let mine = vec![1u64; n];
        let pre = mpi.scan(ReduceOp::Sum, &mine)?;
        Ok(pre[0] + pre[n - 1])
    })
    .unwrap();
    assert_eq!(out, vec![2, 4, 6]);
}

#[test]
fn test_polls_request_completion() {
    run_local(2, |mut mpi| {
        if mpi.rank() == Rank(0) {
            // A receive request completes only once the message arrives.
            let mut req = mpi.irecv(Source::Rank(Rank(1)), Tag::Value(5))?;
            let mut polls = 0u32;
            loop {
                match mpi.test(&req)? {
                    Some(Some((src, tag, body))) => {
                        assert_eq!((src, tag), (Rank(1), 5));
                        assert_eq!(body.as_slice(), b"ping");
                        break;
                    }
                    Some(None) => panic!("recv request reported as send"),
                    None => {
                        polls += 1;
                        assert!(polls < 1_000_000, "never completed");
                        std::hint::spin_loop();
                    }
                }
                // keep the same request
                req = req.clone();
            }
            // Completed sends test true immediately.
            let s = mpi.isend(Rank(1), 6, b"done")?;
            assert!(mpi.test(&s)?.is_some());
        } else {
            std::thread::sleep(std::time::Duration::from_millis(10));
            mpi.send(Rank(0), 5, b"ping")?;
            let (_, _, body) = mpi.recv(Source::Rank(Rank(0)), Tag::Value(6))?;
            assert_eq!(body.as_slice(), b"done");
        }
        mpi.finalize()?;
        Ok(())
    })
    .unwrap();
}
