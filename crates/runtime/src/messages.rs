//! Mailbox message types of the runtime's node kinds.

use mvr_core::{CkptReply, CmReply, ElAddr, ElReply, Metrics, Payload, PeerMsg, Rank, SchedMsg};

/// Everything a communication daemon can receive — the analog of its
/// `select()` loop over one socket per peer and per service (§4.4).
//
// `Sched(SchedMsg::Status)` dwarfs the other variants (it carries four
// histogram summaries), but status messages are rare — one per rank per
// scheduler round — so the size skew costs nothing worth a Box.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum DaemonMsg {
    /// From a peer daemon.
    Peer {
        /// Sending rank.
        from: Rank,
        /// The protocol message.
        msg: PeerMsg,
    },
    /// From the attached MPI process (the "UNIX socket").
    Proc(ProcRequest),
    /// From an event-logger replica. `from` identifies the shard
    /// replica so the daemon can fold per-replica acks into the quorum
    /// watermark its pessimism gate trusts.
    El {
        /// The answering replica.
        from: ElAddr,
        /// The reply.
        reply: ElReply,
    },
    /// From the checkpoint server.
    Ckpt(CkptReply),
    /// From the checkpoint scheduler.
    Sched(SchedMsg),
    /// From a Channel Memory (MPICH-V1 hosting only).
    Cm(CmReply),
}

/// Requests from the MPI process to its daemon, mirroring the channel
/// interface (`PIbsend`, `PIbrecv`, `PInprobe`, `PIiInit`, `PIiFinish`)
/// plus the cooperative-checkpoint handshake.
#[derive(Clone, Debug)]
pub enum ProcRequest {
    /// `PIiInit`: the process is up; answer with `InitOk`.
    Init,
    /// `PIbsend`: fire-and-forget (acceptance = mailbox delivery).
    Bsend {
        /// Destination rank.
        dst: Rank,
        /// MPI-layer bytes.
        bytes: Payload,
    },
    /// `PIbrecv`: answer with the next delivery (`Msg`).
    Brecv,
    /// `PInprobe`: answer with `Probe`.
    Nprobe,
    /// Checkpoint-site poll: answer with `CkptPending`.
    CkptPoll,
    /// Serialized MPI + application state for a pending checkpoint.
    CkptCommit {
        /// MPI-library state.
        mpi_state: Payload,
        /// Application state.
        app_state: Payload,
    },
    /// `PIiFinish`: the process completed; answer with `Done`.
    Finish,
}

/// Replies from the daemon to its MPI process.
#[derive(Clone, Debug)]
pub enum ProcReply {
    /// Answer to `Init`.
    InitOk {
        /// This node's rank.
        rank: Rank,
        /// World size.
        size: u32,
        /// MPI-library state restored from a checkpoint, if any.
        restored_mpi_state: Option<Payload>,
        /// Application state restored from a checkpoint, if any.
        restored_app_state: Option<Payload>,
    },
    /// A delivery (answer to `Brecv`).
    Msg {
        /// Original sender.
        from: Rank,
        /// MPI-layer bytes.
        payload: Payload,
    },
    /// Answer to `Nprobe`.
    Probe(bool),
    /// Answer to `CkptPoll`.
    CkptPending(bool),
    /// Answer to `CkptCommit` (the image is durably stored).
    CkptCommitted,
    /// Answer to `Finish`.
    Done,
}

/// Messages to the dispatcher's fabric mailbox.
#[derive(Clone, Debug)]
pub enum DispatcherMsg {
    /// A rank's MPI process reached `finalize`.
    Finalized {
        /// The finishing rank.
        rank: Rank,
        /// The finishing incarnation's engine counters (replayed
        /// deliveries, duplicate discards, recoveries, …) so the
        /// dispatcher can aggregate them into the [`RunReport`].
        ///
        /// [`RunReport`]: crate::dispatcher::RunReport
        metrics: Metrics,
        /// The incarnation's latency histograms (gate wait, EL ack RTT,
        /// checkpoint upload, replay), merged into the run report.
        timings: mvr_obs::ProtocolTimings,
    },
}
