//! # mvr-runtime — the MPICH-V2 runtime
//!
//! The live, multithreaded deployment of the protocol: per-node
//! communication daemons hosting the `mvr-core` engine, MPI-process
//! threads running user applications over the channel interface, the
//! reliable services (event loggers, checkpoint server, checkpoint
//! scheduler), and the dispatcher that launches, monitors, crashes and
//! reincarnates nodes.
//!
//! ```no_run
//! use mvr_runtime::{run_cluster, ClusterConfig};
//! use mvr_core::Payload;
//! use mvr_mpi::ReduceOp;
//! use std::time::Duration;
//!
//! let results = run_cluster(
//!     ClusterConfig { world: 4, ..Default::default() },
//!     |mpi: &mut mvr_runtime::NodeMpi, _restored: Option<Payload>| {
//!         let sum = mpi.allreduce(ReduceOp::Sum, &[mpi.rank().0 as u64])?;
//!         Ok(Payload::from_vec(sum[0].to_le_bytes().to_vec()))
//!     },
//!     Duration::from_secs(10),
//! )
//! .unwrap();
//! assert_eq!(results.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod channel;
pub mod chaos;
pub mod dispatcher;
pub mod messages;
pub mod node;
pub mod proc;
pub mod progfile;
pub mod services;

pub use channel::DaemonChannel;
pub use chaos::{ChaosConfig, ChaosEvent, ChaosReport};
pub use dispatcher::{run_cluster, Cluster, ClusterConfig, ClusterError, FaultHandle, RunReport};
pub use node::{MpiApp, NodeConfig, NodeExit, Outcome, RuntimeProtocol};
pub use services::SchedulerConfig;

// Re-exported so chaos-soak harnesses need only this crate.
pub use mvr_net::{
    fail_stop_group, CountTrigger, ScheduledKill, TurbulenceConfig, TurbulenceStats,
};
// Re-exported so conservation harnesses can reason about the shard
// topology (which shard owns a rank, merged unique-event views) without
// depending on mvr-eventlog directly.
pub use mvr_eventlog::{merged_unique_events, quorum_of, ShardMap};

/// The MPI handle type applications receive.
pub type NodeMpi = mvr_mpi::Mpi<DaemonChannel>;
