//! The dispatcher — the `mpirun` of the deployment (§4.7).
//!
//! "The execution monitor first launches the execution of the different
//! programs (CS, EL, SC, CN), and then monitors the execution potentially
//! re-launching the crashed programs." Faults are detected as
//! disconnections (our fabric kill) and crashed nodes are reincarnated
//! with `restart = true`, which drives the ROLLBACK → DownloadEL →
//! RESTART1/RESTART2 → replay recovery.

use crate::baseline::{default_cms, spawn_channel_memories};
use crate::messages::DispatcherMsg;
use crate::node::{
    register_node, start_node, MpiApp, NodeConfig, NodeExit, Outcome, RuntimeProtocol,
};
use crate::services::{
    spawn_checkpoint_scheduler, spawn_checkpoint_server, spawn_event_loggers, SchedulerConfig,
};
use mvr_core::{BatchPolicy, NodeId, Payload, Rank};
use mvr_net::Fabric;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deployment parameters (the "program file" of §4.7).
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of computing nodes / MPI processes.
    pub world: u32,
    /// Protocol stack (V2 default; V1/P4 are the paper's baselines).
    pub protocol: RuntimeProtocol,
    /// Number of event loggers (ranks are partitioned across them).
    pub event_loggers: u32,
    /// Enable the checkpoint subsystem with this scheduler configuration.
    pub checkpointing: Option<SchedulerConfig>,
    /// Automatically reincarnate killed nodes.
    pub auto_restart: bool,
    /// Detection + respawn latency before a reincarnation.
    pub restart_delay: Duration,
    /// Event-batching policy of the V2 daemons (lazy by default).
    pub batch: BatchPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            world: 4,
            protocol: RuntimeProtocol::V2,
            event_loggers: 1,
            checkpointing: None,
            auto_restart: true,
            restart_delay: Duration::ZERO,
            batch: BatchPolicy::default(),
        }
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// Not all ranks finished in time (includes a per-rank status dump).
    Timeout(String),
    /// An application rank failed with a non-crash error.
    AppFailed {
        /// The failing rank.
        rank: Rank,
        /// Its error.
        error: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Timeout(s) => write!(f, "cluster run timed out: {s}"),
            ClusterError::AppFailed { rank, error } => {
                write!(f, "rank {rank} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Fault-injection handle, cloneable and usable from any thread while the
/// dispatcher waits.
#[derive(Clone)]
pub struct FaultHandle {
    fabric: Fabric,
    world: u32,
}

impl FaultHandle {
    /// Crash a computing node (daemon + MPI process), fail-stop.
    pub fn kill(&self, rank: Rank) {
        assert!(rank.0 < self.world);
        self.fabric.kill(NodeId::Computing(rank));
        self.fabric.kill(NodeId::Process(rank));
    }

    /// Crash the checkpoint server (§4.3: the system survives; affected
    /// nodes restart from scratch).
    pub fn kill_checkpoint_server(&self) {
        self.fabric.kill(NodeId::CheckpointServer(0));
    }

    /// Crash an event logger. The EL is the component the deployment
    /// *assumes* reliable (§4.3); killing it stalls pessimistic logging —
    /// provided for tests that document this reliance.
    pub fn kill_event_logger(&self, index: u32) {
        self.fabric.kill(NodeId::EventLogger(index));
    }

    /// Is the rank's current incarnation alive?
    pub fn is_alive(&self, rank: Rank) -> bool {
        self.fabric.is_alive(NodeId::Computing(rank))
    }
}

/// The outcome of a completed run, with recovery statistics.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-rank result payloads.
    pub results: Vec<Payload>,
    /// Node reincarnations the dispatcher performed.
    pub restarts: u64,
}

/// A running deployment.
pub struct Cluster {
    fabric: Fabric,
    cfg: ClusterConfig,
    app: Arc<dyn MpiApp>,
    exit_tx: mpsc::Sender<NodeExit>,
    exit_rx: mpsc::Receiver<NodeExit>,
    handles: Vec<JoinHandle<()>>,
    restarts: u64,
}

impl Cluster {
    /// Launch services and all computing nodes running `app`.
    pub fn launch<A: MpiApp>(cfg: ClusterConfig, app: A) -> Cluster {
        let fabric = Fabric::new();
        let app: Arc<dyn MpiApp> = Arc::new(app);
        let (exit_tx, exit_rx) = mpsc::channel();
        let mut handles = Vec::new();

        // Dispatcher mailbox (receives Finalized notifications; kept so
        // daemon sends succeed, drained at teardown).
        let (_disp_mb, _disp_id) = fabric.register::<DispatcherMsg>(NodeId::Dispatcher);

        match cfg.protocol {
            RuntimeProtocol::V2 => {
                handles.extend(spawn_event_loggers(&fabric, cfg.event_loggers));
                handles.push(spawn_checkpoint_server(&fabric));
                if let Some(sc) = &cfg.checkpointing {
                    handles.push(spawn_checkpoint_scheduler(&fabric, cfg.world, sc.clone()));
                }
            }
            RuntimeProtocol::V1 => {
                handles.extend(spawn_channel_memories(
                    &fabric,
                    cfg.world,
                    default_cms(cfg.world),
                ));
            }
            RuntimeProtocol::P4 => {}
        }

        // Register every node before starting any, so initial sends never
        // race a half-registered peer.
        let slots: Vec<_> = (0..cfg.world)
            .map(|r| register_node(&fabric, Rank(r)))
            .collect();
        for (r, s) in slots.into_iter().enumerate() {
            let ncfg = NodeConfig {
                rank: Rank(r as u32),
                world: cfg.world,
                protocol: cfg.protocol,
                event_loggers: cfg.event_loggers,
                channel_memories: default_cms(cfg.world),
                batch: cfg.batch,
                restart: false,
            };
            handles.extend(start_node(s, ncfg, app.clone(), exit_tx.clone()));
        }

        Cluster {
            fabric,
            cfg,
            app,
            exit_tx,
            exit_rx,
            handles,
            restarts: 0,
        }
    }

    /// A fault-injection handle.
    pub fn fault_handle(&self) -> FaultHandle {
        FaultHandle {
            fabric: self.fabric.clone(),
            world: self.cfg.world,
        }
    }

    /// Number of node reincarnations performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// As [`wait`](Self::wait), additionally reporting how many node
    /// reincarnations the dispatcher performed.
    pub fn wait_report(self, timeout: Duration) -> Result<RunReport, ClusterError> {
        let mut me = self;
        let results = me.wait_inner(timeout)?;
        Ok(RunReport {
            restarts: me.restarts,
            results,
        })
    }

    /// Run the dispatcher loop until every rank has finished (restarting
    /// crashed nodes), then tear everything down and return the per-rank
    /// results.
    pub fn wait(mut self, timeout: Duration) -> Result<Vec<Payload>, ClusterError> {
        self.wait_inner(timeout)
    }

    fn wait_inner(&mut self, timeout: Duration) -> Result<Vec<Payload>, ClusterError> {
        let deadline = Instant::now() + timeout;
        let world = self.cfg.world as usize;
        let mut results: Vec<Option<Payload>> = vec![None; world];
        let mut finished = vec![false; world];

        while finished.iter().any(|f| !f) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                let status: Vec<String> = (0..world)
                    .map(|r| {
                        format!(
                            "rank {r}: finished={} alive={}",
                            finished[r],
                            self.fabric.is_alive(NodeId::Computing(Rank(r as u32)))
                        )
                    })
                    .collect();
                self.teardown();
                return Err(ClusterError::Timeout(status.join("; ")));
            }
            let exit = match self.exit_rx.recv_timeout(left) {
                Ok(e) => e,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("dispatcher holds a sender")
                }
            };
            let r = exit.rank.idx();
            match exit.outcome {
                Outcome::Finished(p) => {
                    results[r] = Some(p);
                    finished[r] = true;
                }
                Outcome::Killed => {
                    finished[r] = false;
                    results[r] = None;
                    if self.cfg.protocol == RuntimeProtocol::P4 {
                        // No fault tolerance: a crash kills the run, as
                        // with the real MPICH-P4.
                        self.teardown();
                        return Err(ClusterError::AppFailed {
                            rank: exit.rank,
                            error: "node crashed under MPICH-P4 (no fault tolerance)".into(),
                        });
                    }
                    if self.cfg.auto_restart {
                        if !self.cfg.restart_delay.is_zero() {
                            std::thread::sleep(self.cfg.restart_delay);
                        }
                        self.respawn(exit.rank);
                    }
                }
                Outcome::Failed(error) => {
                    self.teardown();
                    return Err(ClusterError::AppFailed {
                        rank: exit.rank,
                        error,
                    });
                }
            }
        }
        self.teardown();
        Ok(results
            .into_iter()
            .map(|p| p.expect("all finished"))
            .collect())
    }

    fn respawn(&mut self, rank: Rank) {
        self.restarts += 1;
        let slots = register_node(&self.fabric, rank);
        let ncfg = NodeConfig {
            rank,
            world: self.cfg.world,
            protocol: self.cfg.protocol,
            event_loggers: self.cfg.event_loggers,
            channel_memories: default_cms(self.cfg.world),
            batch: self.cfg.batch,
            restart: true,
        };
        self.handles.extend(start_node(
            slots,
            ncfg,
            self.app.clone(),
            self.exit_tx.clone(),
        ));
    }

    fn teardown(&mut self) {
        // Kill everything; threads unwind on their mailbox errors.
        for r in 0..self.cfg.world {
            self.fabric.kill(NodeId::Computing(Rank(r)));
            self.fabric.kill(NodeId::Process(Rank(r)));
        }
        for i in 0..self.cfg.event_loggers {
            self.fabric.kill(NodeId::EventLogger(i));
        }
        for i in 0..default_cms(self.cfg.world) {
            self.fabric.kill(NodeId::ChannelMemory(i));
        }
        self.fabric.kill(NodeId::CheckpointServer(0));
        self.fabric.kill(NodeId::CheckpointScheduler);
        self.fabric.kill(NodeId::Dispatcher);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One-shot convenience: launch, wait, return results.
pub fn run_cluster<A: MpiApp>(
    cfg: ClusterConfig,
    app: A,
    timeout: Duration,
) -> Result<Vec<Payload>, ClusterError> {
    Cluster::launch(cfg, app).wait(timeout)
}
