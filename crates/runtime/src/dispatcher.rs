//! The dispatcher — the `mpirun` of the deployment (§4.7).
//!
//! "The execution monitor first launches the execution of the different
//! programs (CS, EL, SC, CN), and then monitors the execution potentially
//! re-launching the crashed programs." Faults are detected as
//! disconnections (our fabric kill) and crashed nodes are reincarnated
//! with `restart = true`, which drives the ROLLBACK → DownloadEL →
//! RESTART1/RESTART2 → replay recovery.
//!
//! The restart policy is non-blocking: crashed ranks are *scheduled* for
//! respawn at a deadline (detection + relaunch latency, with exponential
//! backoff on repeat crashes) while the dispatcher keeps processing other
//! exits — so overlapping crashes of several ranks are handled
//! concurrently, and a configured `restart_delay` never freezes the
//! monitor itself. A per-rank restart budget bounds pathological crash
//! loops, and with `auto_restart` off a crash fails the run immediately
//! with [`ClusterError::RankLost`] instead of hanging until the timeout.

use crate::baseline::{default_cms, spawn_channel_memories};
use crate::chaos::{ChaosConfig, ChaosDriver, ChaosReport};
use crate::messages::DispatcherMsg;
use crate::node::{
    register_node, start_node, MpiApp, NodeConfig, NodeExit, Outcome, RuntimeProtocol,
};
use crate::services::{
    spawn_checkpoint_scheduler, spawn_checkpoint_server_on, spawn_el_replica, spawn_event_loggers,
    SchedulerConfig,
};
use mvr_ckpt::CheckpointStore;
use mvr_core::{BatchPolicy, ElAddr, Metrics, NodeId, Payload, Rank};
use mvr_eventlog::{EventLogStore, ShardMap};
use mvr_net::{Fabric, Mailbox, TurbulenceConfig};
use mvr_obs::{
    timing_families, window_families, HealthServer, InvariantMonitor, LogHistogram, PromPage,
    ProtoEvent, ProtocolTimings, Recorder, RecorderConfig, RecorderHub, Violation, WindowRing,
    DISPATCHER_RANK,
};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Housekeeping cadence of the dispatcher loop while it waits for exits:
/// due-respawn dispatch, dead-service revival, metrics drain.
const POLL_TICK: Duration = Duration::from_millis(10);

/// Deployment parameters (the "program file" of §4.7).
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of computing nodes / MPI processes.
    pub world: u32,
    /// Protocol stack (V2 default; V1/P4 are the paper's baselines).
    pub protocol: RuntimeProtocol,
    /// Number of event-logger shards (ranks are partitioned across them
    /// by the consistent-hash [`mvr_eventlog::ShardMap`]).
    pub el_shards: u32,
    /// Replicas per event-logger shard. Above 1, each shard's ledger is
    /// held R-way, daemons fan writes out to every replica, and the
    /// pessimism gate opens on a majority quorum of acks — so a single
    /// replica crash neither stalls the gate nor ends the run (the
    /// dispatcher revives the replica and it catches up from a peer).
    pub el_replicas: u32,
    /// Enable the checkpoint subsystem with this scheduler configuration.
    pub checkpointing: Option<SchedulerConfig>,
    /// Automatically reincarnate killed nodes.
    pub auto_restart: bool,
    /// Detection + respawn latency before a reincarnation. Applied as a
    /// *scheduled* deadline, not a blocking sleep, and doubled per repeat
    /// crash of the same rank (capped at 64×).
    pub restart_delay: Duration,
    /// Maximum reincarnations of a single rank before the run fails with
    /// [`ClusterError::RestartBudgetExhausted`].
    pub max_rank_restarts: u32,
    /// Event-batching policy of the V2 daemons (lazy by default).
    pub batch: BatchPolicy,
    /// Seeded randomized crash storm driven against the deployment.
    pub chaos: Option<ChaosConfig>,
    /// Seeded fabric-level turbulence (per-link delays, crash-on-Nth
    /// send/receive triggers, scheduled kills).
    pub turbulence: Option<TurbulenceConfig>,
    /// Flight-recorder settings for every engine, the dispatcher and the
    /// chaos driver. Disabled by default — the fast path is one relaxed
    /// atomic load per would-be record. `MVR_ENGINE_TRACE=1` in the
    /// environment force-enables recording with the stderr mirror (the
    /// successor of the old ad-hoc eprintln tracing).
    pub obs: RecorderConfig,
    /// When set, a failing run (timeout, app failure, lost rank,
    /// exhausted restart budget) automatically dumps the merged
    /// flight-recorder timeline — JSONL plus Chrome-trace/Perfetto
    /// export — into this directory, printing the triage note to stderr.
    pub obs_dump_dir: Option<PathBuf>,
    /// Run the online invariant monitor: every flight record is checked
    /// live against the pessimism-gate, watermark-monotonicity and
    /// exactly-once invariants, and the run halts with
    /// [`ClusterError::InvariantViolated`] on the first violation.
    /// Implies flight recording (the monitor consumes the records).
    /// Off by default — benchmark figures are unaffected.
    pub monitor: bool,
    /// Serve a live Prometheus-style text health page on this address
    /// (e.g. `"127.0.0.1:0"`) for the duration of the run: protocol
    /// latency histograms, EL counters, restart-budget state and
    /// per-rank liveness/incarnations, refreshed every dispatcher tick.
    /// Off by default.
    pub health_addr: Option<String>,
    /// Fast-path capacity (messages) of each SPSC fabric ring, applied
    /// to every mailbox registered after launch. `None` keeps the fabric
    /// default (256). Tiny capacities force the overflow spill lane —
    /// used by the backpressure chaos tests.
    pub ring_capacity: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            world: 4,
            protocol: RuntimeProtocol::V2,
            el_shards: 1,
            el_replicas: 1,
            checkpointing: None,
            auto_restart: true,
            restart_delay: Duration::ZERO,
            max_rank_restarts: 256,
            batch: BatchPolicy::default(),
            chaos: None,
            turbulence: None,
            obs: RecorderConfig::default(),
            obs_dump_dir: None,
            monitor: false,
            health_addr: None,
            ring_capacity: None,
        }
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// Not all ranks finished in time (includes a per-rank status dump).
    Timeout(String),
    /// An application rank failed with a non-crash error.
    AppFailed {
        /// The failing rank.
        rank: Rank,
        /// Its error.
        error: String,
    },
    /// A rank crashed while `auto_restart` was off: without the execution
    /// monitor's relaunch there is no recovery path, so the run fails
    /// immediately instead of idling until the timeout.
    RankLost {
        /// The crashed rank.
        rank: Rank,
    },
    /// A rank exceeded [`ClusterConfig::max_rank_restarts`]
    /// reincarnations — the configured bound on crash loops.
    RestartBudgetExhausted {
        /// The crash-looping rank.
        rank: Rank,
        /// Reincarnations performed for it before giving up.
        restarts: u32,
    },
    /// The online invariant monitor ([`ClusterConfig::monitor`]) caught
    /// a protocol-invariant violation; the run halted at the first one.
    InvariantViolated {
        /// The first violation, with rank, clocks and detail.
        violation: Violation,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Timeout(s) => write!(f, "cluster run timed out: {s}"),
            ClusterError::AppFailed { rank, error } => {
                write!(f, "rank {rank} failed: {error}")
            }
            ClusterError::RankLost { rank } => {
                write!(f, "rank {rank} crashed and auto_restart is disabled")
            }
            ClusterError::RestartBudgetExhausted { rank, restarts } => {
                write!(
                    f,
                    "rank {rank} exhausted its restart budget ({restarts} restarts)"
                )
            }
            ClusterError::InvariantViolated { violation } => {
                write!(f, "protocol invariant violated: {violation}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Fault-injection handle, cloneable and usable from any thread while the
/// dispatcher waits.
#[derive(Clone)]
pub struct FaultHandle {
    fabric: Fabric,
    world: u32,
    el_replicas: u32,
}

impl FaultHandle {
    /// Crash a computing node (daemon + MPI process), fail-stop. The group
    /// dies atomically so the dispatcher never sees it half-killed.
    pub fn kill(&self, rank: Rank) {
        assert!(rank.0 < self.world);
        self.fabric.kill_group(&mvr_net::fail_stop_group(rank));
    }

    /// Crash the checkpoint server (§4.3: the system survives; affected
    /// nodes restart from scratch).
    pub fn kill_checkpoint_server(&self) {
        self.fabric.kill(NodeId::CheckpointServer(0));
    }

    /// Crash an event logger by flat index. Unreplicated, the EL is the
    /// component the deployment *assumes* reliable (§4.3) and killing
    /// it stalls pessimistic logging — provided for tests that document
    /// this reliance. With `el_replicas > 1` the dispatcher revives the
    /// replica and the surviving quorum keeps the gates open.
    pub fn kill_event_logger(&self, index: u32) {
        self.fabric.kill(NodeId::EventLogger(index));
    }

    /// Crash one replica of an event-logger shard.
    pub fn kill_el_replica(&self, shard: u32, replica: u32) {
        self.fabric.kill(NodeId::EventLogger(
            ElAddr { shard, replica }.flat(self.el_replicas),
        ));
    }

    /// Is the rank's current incarnation alive?
    pub fn is_alive(&self, rank: Rank) -> bool {
        self.fabric.is_alive(NodeId::Computing(rank))
    }
}

/// The outcome of a completed run, with recovery statistics.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-rank result payloads.
    pub results: Vec<Payload>,
    /// Node reincarnations the dispatcher performed.
    pub restarts: u64,
    /// Checkpoint-server relaunches the dispatcher performed (§4.3).
    pub service_restarts: u64,
    /// Recoveries begun across all finishing incarnations.
    pub recoveries: u64,
    /// Replays driven to completion across all finishing incarnations.
    pub replays_completed: u64,
    /// Deliveries re-executed from logs during replays.
    pub replayed_deliveries: u64,
    /// Duplicate retransmissions discarded by receivers (the exactly-once
    /// filter).
    pub duplicates_dropped: u64,
    /// Messages re-sent from sender logs on RESTART1 requests.
    pub retransmissions: u64,
    /// Latency histograms (gate wait, EL ack RTT, checkpoint upload,
    /// replay) merged across every rank's finishing incarnation.
    pub timings: ProtocolTimings,
    /// Full engine counters of each rank's finishing incarnation, in
    /// rank order — the raw material of the conservation invariants.
    pub rank_metrics: Vec<Metrics>,
    /// What the chaos driver did, when one was configured.
    pub chaos: Option<ChaosReport>,
}

/// A running deployment.
pub struct Cluster {
    fabric: Fabric,
    cfg: ClusterConfig,
    app: Arc<dyn MpiApp>,
    exit_tx: mpsc::Sender<NodeExit>,
    exit_rx: mpsc::Receiver<NodeExit>,
    handles: Vec<JoinHandle<()>>,
    restarts: u64,
    service_restarts: u64,
    disp_mb: Mailbox<DispatcherMsg>,
    final_metrics: Vec<Option<Metrics>>,
    final_timings: Vec<Option<ProtocolTimings>>,
    chaos: Option<ChaosDriver>,
    chaos_report: Option<ChaosReport>,
    /// Registry of every incarnation's flight recorder (shared epoch).
    hub: Arc<RecorderHub>,
    /// The dispatcher's own recorder (pseudo-rank `DISPATCHER_RANK`).
    disp_rec: Recorder,
    /// The checkpoint server's stable storage: shared across CS
    /// incarnations so acked images survive a CS crash.
    cs_store: Arc<Mutex<CheckpointStore>>,
    /// One unique-event counter per event-logger replica, flat-indexed
    /// (V2 only).
    el_events_ever: Vec<Arc<std::sync::atomic::AtomicU64>>,
    /// Each EL replica's shared ledger, flat-indexed. The store outlives
    /// its service thread, so a killed replica keeps its events and a
    /// revival absorbs a live peer's ledger into it before respawning.
    el_stores: Vec<Arc<Mutex<EventLogStore>>>,
    /// Online invariant monitor, when enabled (sinks every record).
    monitor: Option<Arc<InvariantMonitor>>,
    /// Live health endpoint, when enabled.
    health: Option<HealthServer>,
    /// Ring of recent metrics windows over the merged interval
    /// histograms, published on the health page next to the cumulative
    /// families.
    windows: WindowRing,
}

impl Cluster {
    /// Launch services and all computing nodes running `app`.
    pub fn launch<A: MpiApp>(cfg: ClusterConfig, app: A) -> Cluster {
        let fabric = Fabric::new();
        let app: Arc<dyn MpiApp> = Arc::new(app);
        let (exit_tx, exit_rx) = mpsc::channel();
        let mut handles = Vec::new();

        // MVR_ENGINE_TRACE compatibility: the old env switch now turns
        // the flight recorder on with its stderr mirror.
        let mut obs_cfg = cfg.obs;
        if std::env::var("MVR_ENGINE_TRACE").is_ok() {
            obs_cfg.enabled = true;
            obs_cfg.trace_stderr = true;
        }
        // The monitor consumes live records, so it implies recording.
        if cfg.monitor {
            obs_cfg.enabled = true;
        }
        let hub = RecorderHub::new(obs_cfg);
        // Attach the monitor before minting ANY recorder: only recorders
        // minted after `set_sink` feed it.
        let monitor = if cfg.monitor {
            let m = InvariantMonitor::new();
            hub.set_sink(m.clone());
            Some(m)
        } else {
            None
        };
        let health = cfg.health_addr.as_deref().and_then(|addr| {
            HealthServer::bind(addr)
                .map_err(|e| eprintln!("health endpoint bind({addr}) failed: {e}"))
                .ok()
        });
        let disp_rec = hub.recorder(DISPATCHER_RANK);

        if let Some(cap) = cfg.ring_capacity {
            fabric.set_ring_capacity(cap);
        }
        if let Some(turb) = &cfg.turbulence {
            fabric.install_turbulence(turb.clone());
        }

        // Dispatcher mailbox: receives Finalized notifications carrying
        // each finishing incarnation's engine metrics; drained by the
        // wait loop into the RunReport.
        let (disp_mb, _disp_id) = fabric.register::<DispatcherMsg>(NodeId::Dispatcher);

        let cs_store = Arc::new(Mutex::new(CheckpointStore::new()));
        let mut el_events_ever = Vec::new();
        let mut el_stores = Vec::new();
        match cfg.protocol {
            RuntimeProtocol::V2 => {
                let (el_handles, el_counters, stores) =
                    spawn_event_loggers(&fabric, cfg.el_shards, cfg.el_replicas);
                handles.extend(el_handles);
                el_events_ever = el_counters;
                el_stores = stores;
                handles.push(spawn_checkpoint_server_on(&fabric, cs_store.clone()));
                if let Some(sc) = &cfg.checkpointing {
                    handles.push(spawn_checkpoint_scheduler(&fabric, cfg.world, sc.clone()));
                }
            }
            RuntimeProtocol::V1 => {
                handles.extend(spawn_channel_memories(
                    &fabric,
                    cfg.world,
                    default_cms(cfg.world),
                ));
            }
            RuntimeProtocol::P4 => {}
        }

        // Register every node before starting any, so initial sends never
        // race a half-registered peer.
        let slots: Vec<_> = (0..cfg.world)
            .map(|r| register_node(&fabric, Rank(r)))
            .collect();
        for (r, s) in slots.into_iter().enumerate() {
            let ncfg = NodeConfig {
                rank: Rank(r as u32),
                world: cfg.world,
                protocol: cfg.protocol,
                el_shards: cfg.el_shards,
                el_replicas: cfg.el_replicas,
                channel_memories: default_cms(cfg.world),
                batch: cfg.batch,
                restart: false,
                recorder: hub.recorder(r as u32),
            };
            handles.extend(start_node(s, ncfg, app.clone(), exit_tx.clone()));
        }

        let chaos = cfg
            .chaos
            .as_ref()
            .map(|c| ChaosDriver::spawn(fabric.clone(), c, cfg.world, disp_rec.clone()));

        let world = cfg.world as usize;
        Cluster {
            fabric,
            cfg,
            app,
            exit_tx,
            exit_rx,
            handles,
            restarts: 0,
            service_restarts: 0,
            disp_mb,
            final_metrics: vec![None; world],
            final_timings: vec![None; world],
            chaos,
            chaos_report: None,
            hub,
            disp_rec,
            cs_store,
            el_events_ever,
            el_stores,
            monitor,
            health,
            windows: WindowRing::with_defaults(0),
        }
    }

    /// Address of the live health endpoint, when one is serving
    /// ([`ClusterConfig::health_addr`]); resolves `:0` bindings.
    pub fn health_addr(&self) -> Option<std::net::SocketAddr> {
        self.health.as_ref().map(|h| h.local_addr())
    }

    /// The deployment's flight-recorder registry. Harnesses clone this
    /// before `wait`/`wait_report` (which consume the cluster) so they
    /// can record their own divergences and force a dump afterwards.
    pub fn recorder_hub(&self) -> Arc<RecorderHub> {
        self.hub.clone()
    }

    /// Per-event-logger live counters of cumulative unique events
    /// logged. Clone before `wait`/`wait_report`; read after the run to
    /// assert delivery-conservation invariants.
    pub fn el_event_counters(&self) -> Vec<Arc<std::sync::atomic::AtomicU64>> {
        self.el_events_ever.clone()
    }

    /// A fault-injection handle.
    pub fn fault_handle(&self) -> FaultHandle {
        FaultHandle {
            fabric: self.fabric.clone(),
            world: self.cfg.world,
            el_replicas: self.cfg.el_replicas.max(1),
        }
    }

    /// Number of node reincarnations performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// As [`wait`](Self::wait), additionally reporting the dispatcher's
    /// restart counts and the aggregated recovery metrics of every rank's
    /// finishing incarnation.
    pub fn wait_report(self, timeout: Duration) -> Result<RunReport, ClusterError> {
        let mut me = self;
        let results = me.wait_inner(timeout)?;
        let mut report = RunReport {
            results,
            restarts: me.restarts,
            service_restarts: me.service_restarts,
            chaos: me.chaos_report.take(),
            ..Default::default()
        };
        for m in me.final_metrics.iter().flatten() {
            report.recoveries += m.recoveries;
            report.replays_completed += m.replays_completed;
            report.replayed_deliveries += m.replayed_deliveries;
            report.duplicates_dropped += m.duplicates_dropped;
            report.retransmissions += m.retransmissions;
        }
        for t in me.final_timings.iter().flatten() {
            report.timings.merge(t);
        }
        report.rank_metrics = me.final_metrics.iter().flatten().copied().collect();
        Ok(report)
    }

    /// Run the dispatcher loop until every rank has finished (restarting
    /// crashed nodes), then tear everything down and return the per-rank
    /// results.
    pub fn wait(mut self, timeout: Duration) -> Result<Vec<Payload>, ClusterError> {
        self.wait_inner(timeout)
    }

    /// The reincarnation deadline for a rank's `attempt`-th respawn:
    /// `restart_delay` with exponential backoff, capped at 64×.
    fn backoff(&self, attempt: u32) -> Duration {
        self.cfg.restart_delay * (1u32 << attempt.min(6))
    }

    fn drain_dispatcher_mailbox(&mut self) {
        while let Ok(Some(msg)) = self.disp_mb.try_recv() {
            match msg {
                DispatcherMsg::Finalized {
                    rank,
                    metrics,
                    timings,
                } => {
                    // Later incarnations overwrite: the finishing state of
                    // the incarnation that actually completed wins.
                    self.final_metrics[rank.idx()] = Some(metrics);
                    self.final_timings[rank.idx()] = Some(timings);
                }
            }
        }
    }

    /// Record a run failure as a harness-level `Divergence` and, when a
    /// dump directory is configured and recording is on, write the merged
    /// flight-recorder timeline there. The triage note — naming the dump
    /// paths and the rank/protocol-phase of the first divergence — goes
    /// to stderr so it lands next to the failing harness's output.
    fn fail_dump(&mut self, detail: &str) {
        self.disp_rec.record(
            0,
            ProtoEvent::Divergence {
                detail: detail.to_string(),
            },
        );
        if let Some(dir) = self.cfg.obs_dump_dir.clone() {
            if self.hub.is_enabled() {
                match self.hub.dump(&dir, "crash") {
                    Ok(paths) => eprintln!("{}", paths.summary()),
                    Err(e) => eprintln!("flight-recorder dump failed: {e}"),
                }
            }
        }
    }

    fn wait_inner(&mut self, timeout: Duration) -> Result<Vec<Payload>, ClusterError> {
        let deadline = Instant::now() + timeout;
        let world = self.cfg.world as usize;
        let mut results: Vec<Option<Payload>> = vec![None; world];
        let mut finished = vec![false; world];
        // A pending (scheduled, not yet performed) respawn per rank.
        let mut respawn_at: Vec<Option<Instant>> = vec![None; world];
        // Reincarnations per rank, driving backoff and the budget.
        let mut attempts = vec![0u32; world];

        while finished.iter().any(|f| !f) {
            let now = Instant::now();

            // Halt at the first invariant violation the online monitor
            // caught since the previous tick.
            if let Some(v) = self.monitor.as_ref().and_then(|m| m.violation()) {
                let err = ClusterError::InvariantViolated { violation: v };
                self.fail_dump(&err.to_string());
                self.teardown();
                return Err(err);
            }

            // Refresh the live health page.
            if self.health.is_some() {
                let page = self.render_health(&finished, &attempts, true);
                if let Some(h) = &self.health {
                    h.publish(page);
                }
            }

            // Perform respawns whose deadline has passed.
            for (r, slot) in respawn_at.iter_mut().enumerate() {
                if slot.is_some_and(|t| t <= now) {
                    *slot = None;
                    self.respawn(Rank(r as u32));
                }
            }

            if self.cfg.auto_restart && self.cfg.protocol == RuntimeProtocol::V2 {
                // Revive killed-but-finished daemons: a finished rank's
                // daemon still serves its sender log to replaying peers,
                // so a chaos kill after its Finish must not strand them.
                // The revived incarnation re-runs deterministically and
                // re-finishes with the same payload. Revivals do not
                // consume the restart budget (they stop, silently, once
                // it is exhausted — peers then time out, which is the
                // budget doing its job).
                for r in 0..world {
                    if finished[r]
                        && respawn_at[r].is_none()
                        && attempts[r] < self.cfg.max_rank_restarts
                        && !self.fabric.is_alive(NodeId::Computing(Rank(r as u32)))
                    {
                        respawn_at[r] = Some(now + self.backoff(attempts[r]));
                        attempts[r] = attempts[r].saturating_add(1);
                        self.disp_rec.record(
                            0,
                            ProtoEvent::RespawnScheduled {
                                rank: r as u32,
                                attempt: attempts[r] as u64,
                            },
                        );
                    }
                }
                // Relaunch a crashed checkpoint server (§4.3/§4.7). It
                // resumes from stable storage: every image acked before
                // the crash is served again, so ranks whose event logs
                // were truncated against those images stay recoverable.
                // Only ranks that never checkpointed restart from
                // scratch — §4.3's "at worst".
                if !self.fabric.is_alive(NodeId::CheckpointServer(0)) {
                    self.handles.push(spawn_checkpoint_server_on(
                        &self.fabric,
                        self.cs_store.clone(),
                    ));
                    self.service_restarts += 1;
                }
                // Revive crashed event-logger replicas — replicated
                // deployments only. With R = 1 a dead EL stays dead
                // and the system stalls at the pessimism gate (§4.5:
                // the EL is assumed reliable; the R = 1 tests pin that
                // stall). With R > 1 the survivors keep serving the
                // quorum, and the dead replica is respawned on its
                // surviving ledger after absorbing a live same-shard
                // peer's snapshot, so it returns holding every event
                // the quorum ever acked.
                if self.cfg.el_replicas > 1 {
                    let replicas = self.cfg.el_replicas;
                    for shard in 0..self.cfg.el_shards {
                        for replica in 0..replicas {
                            let addr = ElAddr { shard, replica };
                            let flat = addr.flat(replicas);
                            if self.fabric.is_alive(NodeId::EventLogger(flat)) {
                                continue;
                            }
                            // Absorb EVERY live peer, not just one:
                            // with overlapping EL crash windows the
                            // peers may hold different subsets, and an
                            // ack watermark computed over a ledger with
                            // holes would falsely claim the missing
                            // events durable. The union over all live
                            // peers is hole-free whenever at most
                            // R − Q replicas are down at once (any
                            // event's write set of ≥ Q intersects the
                            // ≥ Q live peers).
                            let snapshots: Vec<EventLogStore> = (0..replicas)
                                .filter(|&p| p != replica)
                                .map(|p| ElAddr { shard, replica: p }.flat(replicas))
                                .filter(|&f| self.fabric.is_alive(NodeId::EventLogger(f)))
                                .map(|f| self.el_stores[f as usize].lock().clone())
                                .collect();
                            let caught_up = {
                                let mut store = self.el_stores[flat as usize].lock();
                                for snap in &snapshots {
                                    store.absorb(snap);
                                }
                                store.total_logged()
                            };
                            self.el_events_ever[flat as usize]
                                .store(caught_up, std::sync::atomic::Ordering::Relaxed);
                            self.handles.push(spawn_el_replica(
                                &self.fabric,
                                addr,
                                replicas,
                                self.el_events_ever[flat as usize].clone(),
                                self.el_stores[flat as usize].clone(),
                            ));
                            self.service_restarts += 1;
                            self.disp_rec.record(
                                0,
                                ProtoEvent::ElReplicaRevive {
                                    shard,
                                    replica,
                                    caught_up,
                                },
                            );
                        }
                    }
                }
            }

            self.drain_dispatcher_mailbox();

            if deadline.saturating_duration_since(now).is_zero() {
                let status: Vec<String> = (0..world)
                    .map(|r| {
                        format!(
                            "rank {r}: finished={} alive={} proc_alive={} restarts={}",
                            finished[r],
                            self.fabric.is_alive(NodeId::Computing(Rank(r as u32))),
                            self.fabric.is_alive(NodeId::Process(Rank(r as u32))),
                            attempts[r]
                        )
                    })
                    .collect();
                let err = ClusterError::Timeout(status.join("; "));
                self.fail_dump(&err.to_string());
                self.teardown();
                return Err(err);
            }

            // Sleep until the next interesting instant: an exit arriving,
            // a scheduled respawn coming due, the deadline, or the next
            // housekeeping tick.
            let mut wake = deadline.min(now + POLL_TICK);
            if let Some(t) = respawn_at.iter().flatten().min() {
                wake = wake.min(*t);
            }
            let exit = match self
                .exit_rx
                .recv_timeout(wake.saturating_duration_since(now))
            {
                Ok(e) => e,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("dispatcher holds a sender")
                }
            };
            let r = exit.rank.idx();
            if self.disp_rec.trace_stderr() {
                eprintln!(
                    "[disp] exit rank={} outcome={:?} respawn_at_set={} attempts={}",
                    r,
                    match &exit.outcome {
                        Outcome::Finished(_) => "Finished",
                        Outcome::Killed => "Killed",
                        Outcome::Failed(_) => "Failed",
                    },
                    respawn_at[r].is_some(),
                    attempts[r]
                );
            }
            match exit.outcome {
                Outcome::Finished(p) => {
                    results[r] = Some(p);
                    finished[r] = true;
                }
                Outcome::Killed => {
                    finished[r] = false;
                    results[r] = None;
                    if self.cfg.protocol == RuntimeProtocol::P4 {
                        // No fault tolerance: a crash kills the run, as
                        // with the real MPICH-P4.
                        let err = ClusterError::AppFailed {
                            rank: exit.rank,
                            error: "node crashed under MPICH-P4 (no fault tolerance)".into(),
                        };
                        self.fail_dump(&err.to_string());
                        self.teardown();
                        return Err(err);
                    }
                    if !self.cfg.auto_restart {
                        let err = ClusterError::RankLost { rank: exit.rank };
                        self.fail_dump(&err.to_string());
                        self.teardown();
                        return Err(err);
                    }
                    if attempts[r] >= self.cfg.max_rank_restarts {
                        let err = ClusterError::RestartBudgetExhausted {
                            rank: exit.rank,
                            restarts: attempts[r],
                        };
                        self.fail_dump(&err.to_string());
                        self.teardown();
                        return Err(err);
                    }
                    // Schedule, don't sleep: other ranks' exits (and
                    // overlapping crashes) keep being processed while
                    // this reincarnation waits out its delay.
                    if respawn_at[r].is_none() {
                        respawn_at[r] = Some(Instant::now() + self.backoff(attempts[r]));
                        attempts[r] += 1;
                        self.disp_rec.record(
                            0,
                            ProtoEvent::RespawnScheduled {
                                rank: r as u32,
                                attempt: attempts[r] as u64,
                            },
                        );
                    }
                }
                Outcome::Failed(error) => {
                    let err = ClusterError::AppFailed {
                        rank: exit.rank,
                        error,
                    };
                    self.fail_dump(&err.to_string());
                    self.teardown();
                    return Err(err);
                }
            }
        }
        self.drain_dispatcher_mailbox();
        // A violation recorded after the last poll tick (e.g. by the
        // final rank's finishing burst) must still fail the run.
        if let Some(v) = self.monitor.as_ref().and_then(|m| m.violation()) {
            let err = ClusterError::InvariantViolated { violation: v };
            self.fail_dump(&err.to_string());
            self.teardown();
            return Err(err);
        }
        if self.health.is_some() {
            let page = self.render_health(&finished, &attempts, false);
            if let Some(h) = &self.health {
                h.publish(page);
            }
        }
        self.teardown();
        Ok(results
            .into_iter()
            .map(|p| p.expect("all finished"))
            .collect())
    }

    /// Render the Prometheus-style text health page: run state, restart
    /// budget, per-rank liveness/incarnations, EL counters, monitor
    /// progress and the merged protocol latency histograms — cumulative
    /// and windowed (the ring of recent windows plus the in-progress
    /// one). Every family carries `# HELP`/`# TYPE` via [`PromPage`],
    /// the formatter shared with the multi-process supervisor's page.
    fn render_health(&mut self, finished: &[bool], attempts: &[u32], running: bool) -> String {
        let mut page = PromPage::new("mpich-v2 runtime live health");
        page.sample(
            "mvr_up",
            "gauge",
            "1 while the deployment is running, 0 once it has finished.",
            "",
            if running { 1 } else { 0 },
        );
        page.sample(
            "mvr_world",
            "gauge",
            "Number of computing ranks in the deployment.",
            "",
            self.cfg.world,
        );
        page.sample(
            "mvr_restarts_total",
            "counter",
            "Computing-rank restarts performed since boot.",
            "",
            self.restarts,
        );
        page.sample(
            "mvr_service_restarts_total",
            "counter",
            "Service-node (EL/CS) restarts performed since boot.",
            "",
            self.service_restarts,
        );
        // Lock-free (atomic depth counter): safe to sample every tick.
        page.sample(
            "mvr_dispatcher_mailbox_depth",
            "gauge",
            "Messages waiting in the dispatcher mailbox.",
            "",
            self.disp_mb.len(),
        );
        page.sample(
            "mvr_restart_budget_per_rank",
            "gauge",
            "Maximum restarts allowed per rank before the run fails.",
            "",
            self.cfg.max_rank_restarts,
        );
        for (r, (&fin, &att)) in finished.iter().zip(attempts).enumerate() {
            let alive = self.fabric.is_alive(NodeId::Computing(Rank(r as u32)));
            let l = format!("rank=\"{r}\"");
            page.sample(
                "mvr_rank_alive",
                "gauge",
                "1 while the rank's current incarnation is live.",
                &l,
                if alive { 1 } else { 0 },
            );
            page.sample(
                "mvr_rank_finished",
                "gauge",
                "1 once the rank has returned its result.",
                &l,
                if fin { 1 } else { 0 },
            );
            page.sample(
                "mvr_rank_incarnations",
                "counter",
                "Incarnations launched for the rank.",
                &l,
                att,
            );
            page.sample(
                "mvr_rank_restart_budget_remaining",
                "gauge",
                "Restarts left in the rank's budget.",
                &l,
                self.cfg.max_rank_restarts.saturating_sub(att),
            );
        }
        for (i, c) in self.el_events_ever.iter().enumerate() {
            page.sample(
                "mvr_el_events_total",
                "counter",
                "Unique events held by the event-logger replica's ledger.",
                &format!("el=\"{i}\""),
                c.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        // Per-shard merged view: a shard's unique-event count is the max
        // across its replicas (each counter is monotone over the same
        // dedup domain; the max is what a read quorum would reconstruct).
        if !self.el_events_ever.is_empty() {
            let replicas = self.cfg.el_replicas.max(1) as usize;
            let per_replica: Vec<u64> = self
                .el_events_ever
                .iter()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .collect();
            for (shard, chunk) in per_replica.chunks(replicas).enumerate() {
                page.sample(
                    "mvr_el_shard_unique_events",
                    "counter",
                    "Unique events a read quorum of the shard would reconstruct (max across replicas).",
                    &format!("shard=\"{shard}\""),
                    chunk.iter().copied().max().unwrap_or(0),
                );
            }
            // Per-shard ack RTT: fold each rank's ack-RTT histogram into
            // the shard the consistent hash assigns it to.
            let shards = self.cfg.el_shards.max(1);
            let map = ShardMap::new(shards);
            let mut per_shard = vec![LogHistogram::default(); shards as usize];
            for (r, t) in self.final_timings.iter().enumerate() {
                if let Some(t) = t {
                    per_shard[map.shard_for(Rank(r as u32)) as usize].merge(&t.el_ack_rtt);
                }
            }
            for (shard, h) in per_shard.iter().enumerate() {
                let s = h.summary();
                let l = format!("shard=\"{shard}\"");
                page.sample(
                    "mvr_el_shard_ack_rtt_count",
                    "counter",
                    "Ack-RTT samples folded into the shard.",
                    &l,
                    s.count,
                );
                page.sample(
                    "mvr_el_shard_ack_rtt_p99_ns",
                    "gauge",
                    "99th-percentile event-log ack RTT (ns) for the shard.",
                    &l,
                    s.p99,
                );
            }
        }
        match &self.monitor {
            Some(m) => {
                page.sample(
                    "mvr_monitor_enabled",
                    "gauge",
                    "1 when the online invariant monitor is attached.",
                    "",
                    1,
                );
                page.sample(
                    "mvr_monitor_records_total",
                    "counter",
                    "Flight records the invariant monitor has consumed.",
                    "",
                    m.records_seen(),
                );
                page.sample(
                    "mvr_monitor_violations",
                    "gauge",
                    "1 once the monitor has caught an invariant violation.",
                    "",
                    if m.violation().is_some() { 1 } else { 0 },
                );
            }
            None => {
                page.sample(
                    "mvr_monitor_enabled",
                    "gauge",
                    "1 when the online invariant monitor is attached.",
                    "",
                    0,
                );
            }
        }
        let mut timings = ProtocolTimings::new();
        for t in self.final_timings.iter().flatten() {
            timings.merge(t);
        }
        // Windowed view: advance the ring on the dispatcher's shared
        // epoch clock, then publish the retained windows next to the
        // cumulative families.
        self.windows.advance(self.disp_rec.now_ns(), &timings);
        timing_families(
            &mut page,
            &[
                ("gate_wait", &timings.gate_wait),
                ("el_ack_rtt", &timings.el_ack_rtt),
                ("ckpt_store", &timings.ckpt_store),
                ("replay", &timings.replay),
            ],
        );
        let closed: Vec<_> = self.windows.closed().collect();
        let current = self.windows.current(self.disp_rec.now_ns(), &timings);
        window_families(&mut page, &closed, &current);
        page.finish()
    }

    fn respawn(&mut self, rank: Rank) {
        // Idempotence: a finished rank killed by chaos is both revived by
        // the liveness scan *and* reported through its daemon's stale
        // `Killed` exit — the second scheduled respawn must not run into
        // the already-live reincarnation. (Only the dispatcher thread
        // registers ranks, so this check cannot race a registration.)
        if self.fabric.is_alive(NodeId::Computing(rank)) {
            if self.disp_rec.trace_stderr() {
                eprintln!("[disp] respawn r{}: skipped, computing alive", rank.0);
            }
            return;
        }
        if self.disp_rec.trace_stderr() {
            eprintln!("[disp] respawn r{}: reincarnating", rank.0);
        }
        // Enforce fail-stop before reincarnating: a kill that raced the
        // two-step registration below can leave the co-located process
        // slot alive after its daemon died.
        self.fabric.kill(NodeId::Process(rank));
        self.restarts += 1;
        let slots = register_node(&self.fabric, rank);
        let ncfg = NodeConfig {
            rank,
            world: self.cfg.world,
            protocol: self.cfg.protocol,
            el_shards: self.cfg.el_shards,
            el_replicas: self.cfg.el_replicas,
            channel_memories: default_cms(self.cfg.world),
            batch: self.cfg.batch,
            restart: true,
            recorder: self.hub.recorder(rank.0),
        };
        self.handles.extend(start_node(
            slots,
            ncfg,
            self.app.clone(),
            self.exit_tx.clone(),
        ));
    }

    fn teardown(&mut self) {
        // Stop the storm first so no kill races the shutdown below.
        if let Some(driver) = self.chaos.take() {
            self.chaos_report = Some(driver.finish());
        }
        self.fabric.clear_turbulence();
        // Kill everything; threads unwind on their mailbox errors.
        for r in 0..self.cfg.world {
            self.fabric.kill(NodeId::Computing(Rank(r)));
            self.fabric.kill(NodeId::Process(Rank(r)));
        }
        for i in 0..self.cfg.el_shards * self.cfg.el_replicas.max(1) {
            self.fabric.kill(NodeId::EventLogger(i));
        }
        for i in 0..default_cms(self.cfg.world) {
            self.fabric.kill(NodeId::ChannelMemory(i));
        }
        self.fabric.kill(NodeId::CheckpointServer(0));
        self.fabric.kill(NodeId::CheckpointScheduler);
        self.fabric.kill(NodeId::Dispatcher);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One-shot convenience: launch, wait, return results.
pub fn run_cluster<A: MpiApp>(
    cfg: ClusterConfig,
    app: A,
    timeout: Duration,
) -> Result<Vec<Payload>, ClusterError> {
    Cluster::launch(cfg, app).wait(timeout)
}
