//! The "program file" of §4.7 — the MPICH-V2 analog of MPICH-P4's
//! `P4PGFILE`.
//!
//! "It describes the run, with for each machine 1) its role inside the
//! system (Computing Node, Event Logger, Checkpoint Server, Checkpoint
//! Scheduler) and 2) the list of options for that role."
//!
//! Format (one machine per line, `#` comments):
//!
//! ```text
//! # role   options
//! cn node01
//! cn node02
//! cn node03
//! cn node04
//! el logger01
//! cs store01
//! sc store01 policy=rr interval_ms=5
//! ```
//!
//! Hostnames are decorative in the in-process deployment (DESIGN.md
//! §2): counts and options are what matter. The socket backend
//! (`mpirun --backend socket`) additionally honours `host:port` entries
//! as *first-launch* bind addresses ([`ProgramFile::bind_map`]);
//! reincarnations always rebind a fresh ephemeral port — announced via
//! their `Hello` — so revival never fights `TIME_WAIT` on the old one.

use crate::services::SchedulerConfig;
use mvr_ckpt::Policy;
use mvr_core::{NodeId, Rank};
use std::time::Duration;

/// A parsed deployment description.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramFile {
    /// Computing-node hostnames, in rank order.
    pub computing: Vec<String>,
    /// Event-logger hostnames.
    pub event_loggers: Vec<String>,
    /// Checkpoint-server hostnames.
    pub checkpoint_servers: Vec<String>,
    /// Checkpoint-scheduler host and options, if present.
    pub scheduler: Option<(String, SchedulerConfig)>,
}

impl ProgramFile {
    /// World size.
    pub fn world(&self) -> u32 {
        self.computing.len() as u32
    }

    /// First-launch bind addresses for the socket backend: every
    /// machine entry written as `host:port` maps to its deployment
    /// node. Entries without a port (plain hostnames) bind ephemeral.
    /// With replicated event loggers, an `el` line's declared port goes
    /// to replica 0 of its shard; other replicas bind ephemeral.
    pub fn bind_map(&self, el_replicas: u32) -> Vec<(NodeId, String)> {
        let mut map = Vec::new();
        for (i, entry) in self.computing.iter().enumerate() {
            if host_port(entry).is_some() {
                map.push((NodeId::Computing(Rank(i as u32)), entry.clone()));
            }
        }
        for (shard, entry) in self.event_loggers.iter().enumerate() {
            if host_port(entry).is_some() {
                let flat = shard as u32 * el_replicas.max(1);
                map.push((NodeId::EventLogger(flat), entry.clone()));
            }
        }
        if let Some(entry) = self.checkpoint_servers.first() {
            if host_port(entry).is_some() {
                map.push((NodeId::CheckpointServer(0), entry.clone()));
            }
        }
        map
    }
}

/// Split a machine entry into hostname and declared port, when the
/// entry carries one (`"node01:4711"` → `("node01", 4711)`).
pub fn host_port(entry: &str) -> Option<(&str, u16)> {
    let (host, port) = entry.rsplit_once(':')?;
    let port: u16 = port.parse().ok()?;
    if host.is_empty() {
        None
    } else {
        Some((host, port))
    }
}

/// Parse errors with line information.
#[derive(Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a program file.
pub fn parse(text: &str) -> Result<ProgramFile, ParseError> {
    let mut pf = ProgramFile {
        computing: Vec::new(),
        event_loggers: Vec::new(),
        checkpoint_servers: Vec::new(),
        scheduler: None,
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let role = parts.next().expect("nonempty line");
        let host = parts
            .next()
            .ok_or_else(|| err(lineno, format!("role '{role}' needs a hostname")))?
            .to_string();
        let opts: Vec<&str> = parts.collect();
        match role {
            "cn" => {
                if !opts.is_empty() {
                    return Err(err(lineno, "computing nodes take no options"));
                }
                pf.computing.push(host);
            }
            "el" => pf.event_loggers.push(host),
            "cs" => pf.checkpoint_servers.push(host),
            "sc" => {
                if pf.scheduler.is_some() {
                    return Err(err(lineno, "duplicate checkpoint scheduler"));
                }
                let mut cfg = SchedulerConfig::default();
                for o in opts {
                    let (k, v) = o
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("bad option '{o}' (want k=v)")))?;
                    match k {
                        "policy" => {
                            cfg.policy = match v {
                                "rr" | "roundrobin" | "round-robin" => Policy::RoundRobin,
                                "adaptive" => Policy::Adaptive,
                                "random" => Policy::Random,
                                other => {
                                    return Err(err(lineno, format!("unknown policy '{other}'")))
                                }
                            };
                        }
                        "interval_ms" => {
                            let ms: u64 = v
                                .parse()
                                .map_err(|_| err(lineno, format!("bad interval '{v}'")))?;
                            cfg.interval = Duration::from_millis(ms);
                        }
                        "seed" => {
                            cfg.seed = v
                                .parse()
                                .map_err(|_| err(lineno, format!("bad seed '{v}'")))?;
                        }
                        other => return Err(err(lineno, format!("unknown option '{other}'"))),
                    }
                }
                pf.scheduler = Some((host, cfg));
            }
            other => return Err(err(lineno, format!("unknown role '{other}'"))),
        }
    }
    if pf.computing.is_empty() {
        return Err(err(0, "no computing nodes declared"));
    }
    Ok(pf)
}

/// Build a default program file for `world` ranks — what `mpirun -np N`
/// does when no file is given ("the user just runs a parallel program
/// using the standard mpirun command").
pub fn default_for(world: u32) -> ProgramFile {
    ProgramFile {
        computing: (0..world).map(|r| format!("node{r:02}")).collect(),
        event_loggers: vec!["reliable0".into()],
        checkpoint_servers: vec!["reliable1".into()],
        scheduler: Some(("reliable0".into(), SchedulerConfig::default())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_deployment() {
        let text = "
# four computing nodes
cn node01
cn node02
cn node03  # trailing comment
cn node04

el logger01
cs store01
sc store01 policy=adaptive interval_ms=7 seed=3
";
        let pf = parse(text).unwrap();
        assert_eq!(pf.world(), 4);
        assert_eq!(pf.computing[2], "node03");
        assert_eq!(pf.event_loggers, vec!["logger01"]);
        assert_eq!(pf.checkpoint_servers, vec!["store01"]);
        let (host, cfg) = pf.scheduler.unwrap();
        assert_eq!(host, "store01");
        assert_eq!(cfg.policy, Policy::Adaptive);
        assert_eq!(cfg.interval, Duration::from_millis(7));
        assert_eq!(cfg.seed, 3);
    }

    #[test]
    fn multiple_event_loggers() {
        let pf = parse("cn a\ncn b\nel e1\nel e2\n").unwrap();
        assert_eq!(pf.event_loggers.len(), 2);
    }

    #[test]
    fn rejects_unknown_role() {
        let e = parse("cn a\nxx b\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown role"));
    }

    #[test]
    fn rejects_bad_policy_and_options() {
        assert!(parse("cn a\nsc h policy=magic\n")
            .unwrap_err()
            .message
            .contains("unknown policy"));
        assert!(parse("cn a\nsc h interval_ms=abc\n")
            .unwrap_err()
            .message
            .contains("bad interval"));
        assert!(parse("cn a\nsc h nonsense=1\n")
            .unwrap_err()
            .message
            .contains("unknown option"));
        assert!(parse("cn a\nsc h oops\n")
            .unwrap_err()
            .message
            .contains("bad option"));
    }

    #[test]
    fn rejects_missing_host_and_empty_world() {
        assert!(parse("cn\n")
            .unwrap_err()
            .message
            .contains("needs a hostname"));
        assert!(parse("el e1\n")
            .unwrap_err()
            .message
            .contains("no computing nodes"));
    }

    #[test]
    fn rejects_duplicate_scheduler() {
        let e = parse("cn a\nsc h\nsc h2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn cn_options_rejected() {
        assert!(parse("cn a opt=1\n")
            .unwrap_err()
            .message
            .contains("no options"));
    }

    #[test]
    fn host_port_entries_feed_the_bind_map() {
        let pf =
            parse("cn node01:4000\ncn node02\nel logger01:5000\nel logger02\ncs store01:6000\n")
                .unwrap();
        assert_eq!(host_port("node01:4000"), Some(("node01", 4000)));
        assert_eq!(host_port("node02"), None);
        assert_eq!(host_port(":4000"), None);
        assert_eq!(host_port("node01:notaport"), None);

        let map = pf.bind_map(2);
        assert_eq!(
            map,
            vec![
                (NodeId::Computing(Rank(0)), "node01:4000".to_string()),
                (NodeId::EventLogger(0), "logger01:5000".to_string()),
                (NodeId::CheckpointServer(0), "store01:6000".to_string()),
            ]
        );
    }

    #[test]
    fn default_is_well_formed() {
        let pf = default_for(8);
        assert_eq!(pf.world(), 8);
        assert_eq!(pf.event_loggers.len(), 1);
        assert!(pf.scheduler.is_some());
    }
}
