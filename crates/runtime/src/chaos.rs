//! The seeded crash-storm driver: randomized, replayable kill schedules
//! executed against a live deployment.
//!
//! Where `mvr_net::chaos` places faults at exact points of a node's own
//! message history (count triggers), this module models the *volatile
//! desktop-grid* environment of the paper: nodes die at random times, in
//! overlapping bursts, sometimes again while their reincarnation is still
//! replaying, and occasionally the checkpoint server goes down with them
//! (§4.3). The whole schedule — gaps, victims, burst sizes, re-kills,
//! checkpoint-server kills — is a **pure function of one seed**
//! ([`ChaosConfig::plan`]), so any failing soak run is reproducible from
//! the seed its harness printed.

use mvr_core::{NodeId, Rank};
use mvr_net::Fabric;
use mvr_obs::{ProtoEvent, Recorder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Parameters of a randomized crash storm.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The RNG seed the whole schedule derives from.
    pub seed: u64,
    /// Total number of rank kills to schedule (re-kills included).
    pub kills: u32,
    /// Minimum gap between kill events.
    pub min_gap: Duration,
    /// Maximum gap between kill events.
    pub max_gap: Duration,
    /// Maximum ranks killed simultaneously in one event (overlapping
    /// crashes; 1 disables bursts).
    pub max_burst: u32,
    /// Percent chance (0–100) that an event also kills the checkpoint
    /// server (§4.3: affected nodes then restart from scratch).
    pub cs_kill_pct: u8,
    /// Percent chance (0–100) that a kill is followed, after a sub-replay
    /// gap (0.5–3 ms), by a re-kill of the same rank — crashing the
    /// reincarnation while it is still recovering.
    pub rekill_pct: u8,
    /// Percent chance (0–100) that an event also kills one event-logger
    /// replica (picked uniformly among `el_total` flat indices). Only
    /// meaningful on replicated deployments (`el_replicas > 1`), where
    /// the surviving quorum keeps the pessimism gates open and the
    /// dispatcher revives the victim; with 0 the plan draws no extra RNG
    /// values, so schedules of EL-oblivious configs are unchanged.
    pub el_kill_pct: u8,
    /// Total EL replicas (`shards × replicas`, flat) the storm may pick
    /// from. 0 disables EL kills regardless of `el_kill_pct`.
    pub el_total: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            kills: 6,
            min_gap: Duration::from_millis(4),
            max_gap: Duration::from_millis(14),
            max_burst: 2,
            cs_kill_pct: 0,
            rekill_pct: 25,
            el_kill_pct: 0,
            el_total: 0,
        }
    }
}

/// One scheduled kill event of a chaos plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Gap since the previous event (the first: since launch).
    pub after: Duration,
    /// Ranks killed simultaneously.
    pub victims: Vec<Rank>,
    /// Whether the checkpoint server is killed too.
    pub kill_checkpoint_server: bool,
    /// Whether this event re-kills a rank whose reincarnation is
    /// (likely) still replaying.
    pub rekill: bool,
    /// Flat index of an event-logger replica killed by this event, if any.
    pub kill_el_replica: Option<u32>,
}

impl ChaosConfig {
    /// The full kill schedule — a pure function of `(self, world)`. Two
    /// calls with the same inputs return identical plans; this is the
    /// replayability contract of the soak harness.
    pub fn plan(&self, world: u32) -> Vec<ChaosEvent> {
        assert!(world > 0, "chaos needs at least one rank");
        let mut rng = rand::Rng::seed_from_u64(self.seed ^ 0xC4A0_5EED);
        let span_us = self.max_gap.saturating_sub(self.min_gap).as_micros().max(1) as u64;
        let mut events = Vec::new();
        let mut remaining = self.kills as u64;
        while remaining > 0 {
            let gap = self.min_gap + Duration::from_micros(rng.next_u64() % span_us);
            let burst = (1 + rng.next_u64() % self.max_burst.max(1) as u64)
                .min(remaining)
                .min(world as u64);
            let mut victims: Vec<Rank> = Vec::new();
            while victims.len() < burst as usize {
                let v = Rank((rng.next_u64() % world as u64) as u32);
                if !victims.contains(&v) {
                    victims.push(v);
                }
            }
            let cs = rng.next_u64() % 100 < self.cs_kill_pct as u64;
            // EL-kill draws are guarded so EL-oblivious configs consume
            // exactly the same RNG sequence as before the field existed.
            let el = if self.el_kill_pct > 0 && self.el_total > 0 {
                (rng.next_u64() % 100 < self.el_kill_pct as u64)
                    .then(|| (rng.next_u64() % self.el_total as u64) as u32)
            } else {
                None
            };
            remaining -= burst;
            let rekill = remaining > 0 && rng.next_u64() % 100 < self.rekill_pct as u64;
            let rekill_victim = victims[0];
            let rekill_gap = Duration::from_micros(500 + rng.next_u64() % 2500);
            events.push(ChaosEvent {
                after: gap,
                victims,
                kill_checkpoint_server: cs,
                rekill: false,
                kill_el_replica: el,
            });
            if rekill {
                remaining -= 1;
                events.push(ChaosEvent {
                    after: rekill_gap,
                    victims: vec![rekill_victim],
                    kill_checkpoint_server: false,
                    rekill: true,
                    kill_el_replica: None,
                });
            }
        }
        events
    }
}

/// What the chaos driver actually did during a run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The full planned schedule (print this — plus the seed — to replay).
    pub plan: Vec<ChaosEvent>,
    /// Rank kills executed before the run completed.
    pub rank_kills: u64,
    /// Checkpoint-server kills executed.
    pub cs_kills: u64,
    /// Event-logger replica kills executed.
    pub el_kills: u64,
}

/// The background thread walking a [`ChaosConfig::plan`] against the
/// fabric. Owned by the dispatcher; stopped and joined at teardown.
pub(crate) struct ChaosDriver {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    plan: Vec<ChaosEvent>,
    rank_kills: Arc<AtomicU64>,
    cs_kills: Arc<AtomicU64>,
    el_kills: Arc<AtomicU64>,
}

impl ChaosDriver {
    pub(crate) fn spawn(fabric: Fabric, cfg: &ChaosConfig, world: u32, obs: Recorder) -> Self {
        let plan = cfg.plan(world);
        let stop = Arc::new(AtomicBool::new(false));
        let rank_kills = Arc::new(AtomicU64::new(0));
        let cs_kills = Arc::new(AtomicU64::new(0));
        let el_kills = Arc::new(AtomicU64::new(0));
        let handle = {
            let plan = plan.clone();
            let stop = stop.clone();
            let rank_kills = rank_kills.clone();
            let cs_kills = cs_kills.clone();
            let el_kills = el_kills.clone();
            std::thread::Builder::new()
                .name("chaos-driver".into())
                .spawn(move || {
                    'events: for ev in &plan {
                        // Sleep in small chunks so a finished run does not
                        // wait out the remaining schedule.
                        let mut left = ev.after;
                        while !left.is_zero() {
                            if stop.load(Ordering::Acquire) {
                                break 'events;
                            }
                            let chunk = left.min(Duration::from_millis(2));
                            std::thread::sleep(chunk);
                            left = left.saturating_sub(chunk);
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        for v in &ev.victims {
                            // Atomic: the dispatcher must never observe
                            // the daemon dead while the co-located process
                            // slot is still alive (it would race a respawn
                            // into the half-killed group).
                            fabric.kill_group(&mvr_net::fail_stop_group(*v));
                            obs.record(
                                0,
                                ProtoEvent::ChaosKill {
                                    victim: v.0,
                                    rekill: ev.rekill,
                                },
                            );
                            rank_kills.fetch_add(1, Ordering::Relaxed);
                        }
                        if ev.kill_checkpoint_server {
                            fabric.kill(NodeId::CheckpointServer(0));
                            obs.record(
                                0,
                                ProtoEvent::ServiceKill {
                                    service: "cs".into(),
                                },
                            );
                            cs_kills.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(flat) = ev.kill_el_replica {
                            fabric.kill(NodeId::EventLogger(flat));
                            obs.record(
                                0,
                                ProtoEvent::ServiceKill {
                                    service: format!("el{flat}"),
                                },
                            );
                            el_kills.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawn chaos driver")
        };
        ChaosDriver {
            handle: Some(handle),
            stop,
            plan,
            rank_kills,
            cs_kills,
            el_kills,
        }
    }

    /// Stop the storm, join the thread, and report what was executed.
    pub(crate) fn finish(mut self) -> ChaosReport {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        ChaosReport {
            plan: std::mem::take(&mut self.plan),
            rank_kills: self.rank_kills.load(Ordering::Relaxed),
            cs_kills: self.cs_kills.load(Ordering::Relaxed),
            el_kills: self.el_kills.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_the_seed() {
        let cfg = ChaosConfig {
            seed: 42,
            kills: 12,
            max_burst: 3,
            cs_kill_pct: 20,
            rekill_pct: 40,
            ..Default::default()
        };
        assert_eq!(cfg.plan(5), cfg.plan(5), "same seed, same plan");
        let other = ChaosConfig { seed: 43, ..cfg };
        assert_ne!(cfg.plan(5), other.plan(5), "seed changes the plan");
    }

    #[test]
    fn plan_schedules_exactly_the_requested_kills() {
        for seed in 0..20u64 {
            let cfg = ChaosConfig {
                seed,
                kills: 9,
                max_burst: 3,
                rekill_pct: 50,
                cs_kill_pct: 30,
                ..Default::default()
            };
            let plan = cfg.plan(4);
            let total: usize = plan.iter().map(|e| e.victims.len()).sum();
            assert_eq!(total, 9, "seed {seed}");
            for ev in &plan {
                assert!(!ev.victims.is_empty());
                assert!(ev.victims.iter().all(|v| v.0 < 4));
                // Victims in one burst are distinct (overlap = distinct ranks).
                let mut vs = ev.victims.clone();
                vs.dedup();
                assert_eq!(vs.len(), ev.victims.len());
            }
        }
    }

    #[test]
    fn el_kills_are_planned_only_when_enabled() {
        let base = ChaosConfig {
            seed: 11,
            kills: 10,
            max_burst: 2,
            cs_kill_pct: 20,
            rekill_pct: 40,
            ..Default::default()
        };
        // el_kill_pct == 0 draws no RNG values: the schedule of an
        // EL-oblivious config is bit-identical whatever el_total says.
        let with_total = ChaosConfig {
            el_total: 8,
            ..base.clone()
        };
        assert_eq!(base.plan(4), with_total.plan(4));
        let storm = ChaosConfig {
            el_kill_pct: 100,
            el_total: 8,
            ..base.clone()
        };
        let plan = storm.plan(4);
        assert!(plan
            .iter()
            .filter(|e| !e.rekill)
            .all(|e| e.kill_el_replica.is_some()));
        assert!(plan.iter().filter_map(|e| e.kill_el_replica).all(|f| f < 8));
        assert!(plan
            .iter()
            .filter(|e| e.rekill)
            .all(|e| e.kill_el_replica.is_none()));
    }

    #[test]
    fn burst_size_respects_world_and_config() {
        let cfg = ChaosConfig {
            seed: 7,
            kills: 30,
            max_burst: 8,
            ..Default::default()
        };
        let plan = cfg.plan(3);
        assert!(plan.iter().all(|e| e.victims.len() <= 3));
    }
}
