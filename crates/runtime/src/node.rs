//! A computing node: the communication daemon thread (hosting the
//! [`V2Engine`]) and the MPI-process thread (running the user
//! application), connected by the process↔daemon mailbox pair.
//!
//! Mirrors §4.4: "the MPI process does not connect directly to all the
//! other computing nodes. This is the job of a communication daemon
//! running on the same machine"; and §4.6.1 for the checkpoint handshake
//! (the daemon triggers, the process supplies its image at a quiescent
//! point — our cooperative substitution for Condor).

use crate::channel::DaemonChannel;
use crate::messages::{DaemonMsg, DispatcherMsg, ProcReply, ProcRequest};
use mvr_ckpt::CkptPacket;
use mvr_core::engine::{Input, Output};
use mvr_core::{
    BatchPolicy, CkptReply, CkptRequest, ElAddr, ElReply, ElRequest, NodeId, NodeImage, Payload,
    Rank, ReceptionEvent, SchedMsg, V2Engine,
};
use mvr_eventlog::{quorum_of, ElPacket, ShardMap};
use mvr_mpi::{Mpi, MpiError, MpiResult};
use mvr_net::{Fabric, Identity, Mailbox, RecvError, SendError};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a restarting daemon waits for the checkpoint server's image
/// reply before degrading to a from-scratch restart. Covers the window
/// where the CS died *after* accepting the request (its relaunch starts
/// with an empty store and would never answer the stale query).
const CS_FETCH_TIMEOUT: Duration = Duration::from_millis(250);

/// Upper bound on one batched drain of the daemon mailbox. Bounds the
/// latency of the post-drain event flush during a sustained flood; an
/// oversize backlog simply takes another (already-woken) pass.
const DAEMON_DRAIN_BATCH: usize = 128;

/// Send to a reliable service, retrying transient `Disconnected` errors
/// with exponential backoff. A dead service being relaunched by the
/// dispatcher (§4.7) looks, briefly, exactly like a broken deployment;
/// the retries (≈50 ms total) bridge the relaunch gap. `SenderDead`
/// (we ourselves were killed) is never retried.
fn send_service_retrying<M: Send + 'static>(
    identity: &Identity,
    to: NodeId,
    msg: M,
    attempts: u32,
) -> Result<(), SendError> {
    let mut delay = Duration::from_micros(250);
    let mut last = SendError::Disconnected(to);
    // `send_reclaim` hands the message back on failure, so retries move
    // the same value instead of cloning per attempt (a checkpoint Put
    // carries the whole image blob — cloning it three times was real
    // work even with refcounted segments).
    let mut msg = msg;
    for i in 0..attempts {
        match identity.send_reclaim(to, msg) {
            Ok(()) => return Ok(()),
            Err((SendError::SenderDead, _)) => return Err(SendError::SenderDead),
            Err((e @ SendError::Disconnected(_), m)) => {
                last = e;
                msg = m;
                if i + 1 < attempts {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(20));
                }
            }
        }
    }
    Err(last)
}

/// The application interface: a deterministic MPI program with
/// serializable state.
///
/// Contract (the piecewise-determinism assumption of §4.1): given the
/// same sequence of deliveries and probe outcomes, `run` must perform the
/// same MPI calls with the same arguments. Call
/// [`Mpi::checkpoint_site`] at iteration boundaries so daemon-ordered
/// checkpoints can be taken; on restart `run` is re-invoked with the
/// restored state.
pub trait MpiApp: Send + Sync + 'static {
    /// Execute the program; return the final result bytes.
    fn run(&self, mpi: &mut Mpi<DaemonChannel>, restored: Option<Payload>) -> MpiResult<Payload>;
}

impl<F> MpiApp for F
where
    F: Fn(&mut Mpi<DaemonChannel>, Option<Payload>) -> MpiResult<Payload> + Send + Sync + 'static,
{
    fn run(&self, mpi: &mut Mpi<DaemonChannel>, restored: Option<Payload>) -> MpiResult<Payload> {
        self(mpi, restored)
    }
}

// Lets launchers resolve an app once (e.g. from a CLI spec) and hand
// the same `Arc` to either the in-process or the multi-process backend.
impl MpiApp for Arc<dyn MpiApp> {
    fn run(&self, mpi: &mut Mpi<DaemonChannel>, restored: Option<Payload>) -> MpiResult<Payload> {
        (**self).run(mpi, restored)
    }
}

/// How a node incarnation ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The application completed with this result.
    Finished(Payload),
    /// The incarnation was crashed (fail-stop); the dispatcher restarts it.
    Killed,
    /// The application failed with a real error.
    Failed(String),
}

/// Exit report from a node incarnation to the dispatcher.
#[derive(Clone, Debug)]
pub struct NodeExit {
    /// Reporting rank.
    pub rank: Rank,
    /// What happened.
    pub outcome: Outcome,
}

/// Which protocol stack the deployment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeProtocol {
    /// MPICH-V2 (the paper's contribution): full fault tolerance.
    V2,
    /// MPICH-V1 baseline: Channel Memory logging; restarts replay from
    /// scratch via the CM (no checkpoint images in this hosting).
    V1,
    /// MPICH-P4 baseline: no fault tolerance; crashes are fatal.
    P4,
}

/// Static node parameters.
#[derive(Clone)]
pub struct NodeConfig {
    /// This node's rank.
    pub rank: Rank,
    /// World size.
    pub world: u32,
    /// Protocol stack.
    pub protocol: RuntimeProtocol,
    /// Number of event-logger shards in the deployment (V2); ranks are
    /// partitioned across shards by consistent hashing.
    pub el_shards: u32,
    /// Replicas per event-logger shard (V2). Above 1, the pessimism
    /// gate opens on a majority quorum of replica acks.
    pub el_replicas: u32,
    /// Number of Channel Memories (V1).
    pub channel_memories: u32,
    /// Event-batching policy for the V2 engine (lazy flushing amortizes
    /// the pessimism gate's event-logger round-trips).
    pub batch: BatchPolicy,
    /// Whether this is a restart (fetch image, download events, recover).
    pub restart: bool,
    /// Flight recorder this incarnation writes protocol events into.
    /// The dispatcher mints one per incarnation from the deployment's
    /// [`mvr_obs::RecorderHub`] so dumps merge across restarts.
    pub recorder: mvr_obs::Recorder,
}

/// The fabric registrations of one node incarnation, created *before* the
/// threads start so peers never race a half-registered node.
pub struct NodeSlots {
    daemon_mb: Mailbox<DaemonMsg>,
    daemon_id: Identity,
    proc_mb: Mailbox<ProcReply>,
    proc_id: Identity,
}

/// Register a (fresh or reincarnated) node on the fabric.
pub fn register_node(fabric: &Fabric, rank: Rank) -> NodeSlots {
    let (daemon_mb, daemon_id) = fabric.register::<DaemonMsg>(NodeId::Computing(rank));
    let (proc_mb, proc_id) = fabric.register::<ProcReply>(NodeId::Process(rank));
    NodeSlots {
        daemon_mb,
        daemon_id,
        proc_mb,
        proc_id,
    }
}

/// Start the daemon and process threads of a registered node.
pub fn start_node(
    slots: NodeSlots,
    cfg: NodeConfig,
    app: Arc<dyn MpiApp>,
    exit_tx: mpsc::Sender<NodeExit>,
) -> Vec<std::thread::JoinHandle<()>> {
    let NodeSlots {
        daemon_mb,
        daemon_id,
        proc_mb,
        proc_id,
    } = slots;
    let rank = cfg.rank;
    let daemon_exit_tx = exit_tx.clone();

    let daemon = std::thread::Builder::new()
        .name(format!("daemon-{rank}"))
        .spawn(move || {
            // A kill unwinds silently (the dispatcher handles the
            // restart). A replay divergence is a bug in the application
            // or the protocol — report it so the dispatcher fails the
            // run instead of leaving the MPI process blocked forever on
            // a daemon that no longer exists.
            match cfg.protocol {
                RuntimeProtocol::V2 => {
                    // A panicking daemon (an engine invariant tripping)
                    // leaves its fabric slots registered and alive: peers
                    // keep sending into a mailbox nobody drains and the
                    // run strands until the dispatcher timeout. Catch the
                    // unwind and fail the run immediately instead.
                    let obs = cfg.recorder.clone();
                    let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        daemon_main(daemon_mb, daemon_id, cfg)
                    }));
                    if obs.trace_stderr() {
                        eprintln!("[dmn r{}] daemon exit: {:?}", rank.0, end);
                    }
                    match end {
                        Ok(Err(DaemonEnd::ReplayDivergence(err))) => {
                            let detail = format!("replay divergence: {err}");
                            obs.record(
                                0,
                                mvr_obs::ProtoEvent::Divergence {
                                    detail: detail.clone(),
                                },
                            );
                            let _ = daemon_exit_tx.send(NodeExit {
                                rank,
                                outcome: Outcome::Failed(detail),
                            });
                        }
                        Ok(_) => {}
                        Err(panic) => {
                            let what = panic
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| panic.downcast_ref::<&str>().copied())
                                .unwrap_or("opaque panic payload");
                            let detail = format!("daemon panicked: {what}");
                            obs.record(
                                0,
                                mvr_obs::ProtoEvent::Divergence {
                                    detail: detail.clone(),
                                },
                            );
                            let _ = daemon_exit_tx.send(NodeExit {
                                rank,
                                outcome: Outcome::Failed(detail),
                            });
                        }
                    }
                }
                RuntimeProtocol::V1 => crate::baseline::daemon_main_v1(
                    daemon_mb,
                    daemon_id,
                    cfg.rank,
                    cfg.world,
                    cfg.channel_memories,
                ),
                RuntimeProtocol::P4 => {
                    crate::baseline::daemon_main_p4(daemon_mb, daemon_id, cfg.rank, cfg.world)
                }
            }
        })
        .expect("spawn daemon thread");

    let process = std::thread::Builder::new()
        .name(format!("mpi-{rank}"))
        .spawn(move || {
            let chan = DaemonChannel::new(rank, proc_id, proc_mb);
            let result: MpiResult<Payload> = (|| {
                let (mut mpi, restored) = Mpi::init(chan)?;
                let out = app.run(&mut mpi, restored)?;
                mpi.finalize()?;
                Ok(out)
            })();
            let outcome = match result {
                Ok(p) => Outcome::Finished(p),
                Err(MpiError::Killed) => Outcome::Killed,
                Err(e) => Outcome::Failed(e.to_string()),
            };
            // The dispatcher may already be gone during teardown.
            let _ = exit_tx.send(NodeExit { rank, outcome });
        })
        .expect("spawn MPI process thread");

    vec![daemon, process]
}

/// Errors that terminate a daemon.
#[derive(Debug)]
enum DaemonEnd {
    /// The incarnation was killed (mailbox closed / identity stale).
    Killed,
    /// The application violated piecewise determinism during a replay —
    /// a bug in the application or the protocol, reported to the
    /// dispatcher as a run failure.
    ReplayDivergence(String),
}

struct Daemon {
    engine: V2Engine,
    identity: Identity,
    rank: Rank,
    /// Every replica of this rank's event-logger shard, flat-indexed by
    /// replica (§4.5: a daemon talks to exactly one shard).
    el_nodes: Vec<NodeId>,
    /// Replica acks needed before shipped events count as durable.
    /// Replication factor (1 = the unreplicated single-EL deployment).
    el_replicas: u32,
    cs_node: NodeId,
    sched_node: NodeId,
    /// Restored process state to hand out at `Init`.
    restored_mpi: Option<Payload>,
    restored_app: Option<Payload>,
    /// `TakeCheckpoint` emitted; waiting for the process to reach a site.
    ckpt_armed: Option<u64>,
    /// The process finalized (we only serve the protocol from now on).
    finalized: bool,
}

/// Union-merge several replicas' `DownloadEL` answers (each receiver-
/// clock ordered) into one deduplicated, ordered event list. Any
/// replica missed by a write quorum lacks at most the events the
/// others hold, so the union over a read quorum recovers every
/// quorum-acked event.
fn merge_downloads(mut lists: Vec<Vec<ReceptionEvent>>) -> Vec<ReceptionEvent> {
    if lists.len() <= 1 {
        return lists.pop().unwrap_or_default();
    }
    let mut merged: Vec<ReceptionEvent> = Vec::new();
    for list in lists {
        let mut out = Vec::with_capacity(merged.len() + list.len());
        let (mut i, mut j) = (0, 0);
        while i < merged.len() && j < list.len() {
            let (a, b) = (merged[i], list[j]);
            if a.receiver_clock == b.receiver_clock {
                out.push(a);
                i += 1;
                j += 1;
            } else if a.receiver_clock < b.receiver_clock {
                out.push(a);
                i += 1;
            } else {
                out.push(b);
                j += 1;
            }
        }
        out.extend_from_slice(&merged[i..]);
        out.extend_from_slice(&list[j..]);
        merged = out;
    }
    merged
}

fn daemon_main(
    mailbox: Mailbox<DaemonMsg>,
    identity: Identity,
    cfg: NodeConfig,
) -> Result<(), DaemonEnd> {
    let rank = cfg.rank;
    let el_replicas = cfg.el_replicas.max(1);
    let el_quorum = quorum_of(el_replicas);
    let shard = ShardMap::new(cfg.el_shards.max(1)).shard_for(rank);
    let el_nodes: Vec<NodeId> = (0..el_replicas)
        .map(|replica| NodeId::EventLogger(ElAddr { shard, replica }.flat(el_replicas)))
        .collect();
    let cs_node = NodeId::CheckpointServer(0);
    let sched_node = NodeId::CheckpointScheduler;

    // ---- startup / recovery (ROLLBACK + DownloadEL + RESTART1) ----
    let mut buffered: Vec<DaemonMsg> = Vec::new();
    let mut restored_mpi = None;
    let mut restored_app = None;

    let engine = if cfg.restart {
        // Fetch the latest image; a dead checkpoint server degrades to a
        // from-scratch restart ("may restart from scratch, at worst").
        let image: Option<NodeImage> = match send_service_retrying(
            &identity,
            cs_node,
            CkptPacket {
                from: rank,
                req: CkptRequest::GetLatest { rank },
            },
            4,
        ) {
            Ok(()) => {
                // Bounded wait: if the CS dies between accepting the
                // request and answering, its relaunched instance will
                // never reply to the stale query — degrade to scratch.
                let fetch_deadline = Instant::now() + CS_FETCH_TIMEOUT;
                loop {
                    let left = fetch_deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break None;
                    }
                    match mailbox.recv_timeout(left) {
                        Ok(DaemonMsg::Ckpt(CkptReply::Image {
                            clock: Some(_),
                            image,
                        })) => match NodeImage::decode_blob(&image) {
                            Ok(img) => break Some(img),
                            Err(_) => break None,
                        },
                        Ok(DaemonMsg::Ckpt(CkptReply::Image { clock: None, .. })) => break None,
                        Ok(other) => buffered.push(other),
                        Err(RecvError::Timeout) => break None,
                        Err(_) => return Err(DaemonEnd::Killed),
                    }
                }
            }
            Err(SendError::SenderDead) => return Err(DaemonEnd::Killed),
            Err(_) => None,
        };

        let mut engine = match image {
            Some(img) => {
                restored_mpi = Some(img.mpi_state);
                restored_app = Some(img.app_state);
                // `restore` yields the default policy; apply the
                // deployment's before any post-restart delivery.
                let mut e = V2Engine::restore(img.engine);
                e.set_batch_policy(cfg.batch);
                e
            }
            None => V2Engine::fresh_with_policy(rank, cfg.world, cfg.batch),
        };
        // Attach the flight recorder before `begin_recovery` so the
        // RESTART1 / recovery-begin records land in the timeline.
        engine.set_recorder(cfg.recorder.clone());
        engine.set_el_replication(el_replicas, el_quorum);

        // DownloadEL(H_p): with replication, ask every replica of our
        // shard and union-merge a read quorum of answers — the write
        // quorum that acked each event intersects it, so the merge holds
        // every quorum-acked event even if one replica's copy is stale.
        // Up to R − Q replicas may be dead (mid-revival); unreplicated
        // (R = 1) the EL is the reliable component and a send failure
        // past the retry window means the deployment is broken.
        let after_clock = engine.clock();
        let mut asked = 0u32;
        for el_node in &el_nodes {
            if send_service_retrying(
                &identity,
                *el_node,
                ElPacket {
                    from: rank,
                    req: ElRequest::Download { rank, after_clock },
                },
                8,
            )
            .is_ok()
            {
                asked += 1;
            }
        }
        if asked < el_quorum {
            return Err(DaemonEnd::Killed);
        }
        let mut answered: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut downloads: Vec<Vec<ReceptionEvent>> = Vec::new();
        while (answered.len() as u32) < el_quorum.min(asked) {
            match mailbox.recv() {
                Ok(DaemonMsg::El {
                    from,
                    reply: ElReply::Events(ev),
                }) => {
                    if answered.insert(from.replica) {
                        downloads.push(ev);
                    }
                }
                Ok(other) => buffered.push(other),
                Err(_) => return Err(DaemonEnd::Killed),
            }
        }
        engine.begin_recovery(merge_downloads(downloads));
        engine
    } else {
        let mut engine = V2Engine::fresh_with_policy(rank, cfg.world, cfg.batch);
        engine.set_recorder(cfg.recorder.clone());
        engine.set_el_replication(el_replicas, el_quorum);
        engine
    };

    let mut d = Daemon {
        engine,
        identity,
        rank,
        el_nodes,
        el_replicas,
        cs_node,
        sched_node,
        restored_mpi,
        restored_app,
        ckpt_armed: None,
        finalized: false,
    };

    // Emit the RESTART1 broadcast (and any immediate outputs).
    d.pump_outputs()?;
    for msg in buffered {
        d.handle(msg)?;
    }

    // ---- main select loop ----
    // `recv_many` blocks for the first message, then drains the backlog
    // in one batched pass — one wakeup amortizes across a burst. Under a
    // lazy policy the events of a burst of deliveries ship as one batch,
    // and an idle daemon never sits on unlogged events (the latency
    // bound of the lazy-flush protocol — see DESIGN.md).
    let mut batch: Vec<DaemonMsg> = Vec::with_capacity(DAEMON_DRAIN_BATCH);
    loop {
        mailbox
            .recv_many(&mut batch, DAEMON_DRAIN_BATCH)
            .map_err(|_| DaemonEnd::Killed)?;
        for msg in batch.drain(..) {
            d.handle(msg)?;
        }
        if d.engine.pending_event_count() > 0 {
            d.engine
                .handle(Input::FlushEvents)
                .expect("flush cannot diverge");
            d.pump_outputs()?;
        }
    }
}

impl Daemon {
    fn handle(&mut self, msg: DaemonMsg) -> Result<(), DaemonEnd> {
        match msg {
            DaemonMsg::Peer { from, msg } => {
                self.engine
                    .handle(Input::Peer { from, msg })
                    .map_err(|e| DaemonEnd::ReplayDivergence(e.to_string()))?;
            }
            DaemonMsg::Proc(req) => self.handle_proc(req)?,
            DaemonMsg::El {
                from,
                reply: ElReply::Ack { up_to },
            } => {
                // Replicated: per-replica acks feed the engine's quorum
                // tracker; the gate only opens on the quorum watermark.
                // Unreplicated: byte-identical to the single-ack path.
                let input = if self.el_replicas > 1 {
                    Input::ElReplicaAck {
                        replica: from.replica,
                        up_to,
                    }
                } else {
                    Input::ElAck { up_to }
                };
                self.engine.handle(input).expect("ack cannot diverge");
            }
            DaemonMsg::El {
                reply: ElReply::Events(_),
                ..
            } => { /* stale download reply */ }
            DaemonMsg::Ckpt(CkptReply::Stored { clock, .. }) => {
                self.engine
                    .handle(Input::CheckpointStored)
                    .expect("store ack cannot diverge");
                let _ = self.identity.send(
                    self.sched_node,
                    SchedMsg::CheckpointDone {
                        rank: self.rank,
                        clock,
                    },
                );
            }
            DaemonMsg::Ckpt(CkptReply::Image { .. }) => { /* stale fetch reply */ }
            DaemonMsg::Sched(SchedMsg::StatusRequest) => {
                let m = self.engine.metrics();
                let status = SchedMsg::Status {
                    rank: self.rank,
                    logged_bytes: self.engine.logged_bytes(),
                    sent_bytes: m.bytes_sent,
                    recv_bytes: m.bytes_delivered,
                    el_batches: m.el_batches_sent,
                    el_events: m.el_events_batched,
                    el_acks: m.el_acks_received,
                    el_max_batch: m.el_max_batch_events,
                    timings: self.engine.timings().summary(),
                };
                let _ = self.identity.send(self.sched_node, status);
            }
            DaemonMsg::Sched(SchedMsg::CheckpointOrder) => {
                if !self.finalized {
                    self.engine
                        .handle(Input::CheckpointOrder)
                        .expect("order cannot diverge");
                }
            }
            DaemonMsg::Sched(_) => {}
            DaemonMsg::Cm(_) => { /* V1-only traffic; ignore under V2 */ }
        }
        self.pump_outputs()
    }

    fn handle_proc(&mut self, req: ProcRequest) -> Result<(), DaemonEnd> {
        match req {
            ProcRequest::Init => {
                let reply = ProcReply::InitOk {
                    rank: self.rank,
                    size: self.engine.world(),
                    restored_mpi_state: self.restored_mpi.take(),
                    restored_app_state: self.restored_app.take(),
                };
                self.to_proc(reply)?;
            }
            ProcRequest::Bsend { dst, bytes } => {
                self.engine
                    .handle(Input::AppSend {
                        dst,
                        payload: bytes,
                    })
                    .map_err(|e| DaemonEnd::ReplayDivergence(e.to_string()))?;
            }
            ProcRequest::Brecv => {
                self.engine
                    .handle(Input::AppRecv)
                    .map_err(|e| DaemonEnd::ReplayDivergence(e.to_string()))?;
            }
            ProcRequest::Nprobe => {
                self.engine
                    .handle(Input::AppProbe)
                    .map_err(|e| DaemonEnd::ReplayDivergence(e.to_string()))?;
            }
            ProcRequest::CkptPoll => {
                if self.ckpt_armed.is_none() {
                    if let Some(clock) = self.engine.try_arm_checkpoint() {
                        self.ckpt_armed = Some(clock);
                    }
                }
                self.to_proc(ProcReply::CkptPending(self.ckpt_armed.is_some()))?;
            }
            ProcRequest::CkptCommit {
                mpi_state,
                app_state,
            } => {
                let clock = self
                    .ckpt_armed
                    .take()
                    .expect("commit without armed checkpoint");
                let image = NodeImage {
                    engine: self.engine.snapshot(),
                    mpi_state,
                    app_state,
                };
                debug_assert_eq!(image.engine.clock, clock);
                // Best-effort with a short retry: a CS mid-relaunch gets
                // a second chance; a lost image only costs replay depth.
                let _ = send_service_retrying(
                    &self.identity,
                    self.cs_node,
                    CkptPacket {
                        from: self.rank,
                        req: CkptRequest::Put {
                            rank: self.rank,
                            clock,
                            // Zero-copy: segments alias the sender log's
                            // own buffers; nothing is serialized here.
                            image: image.encode_blob(),
                        },
                    },
                    3,
                );
                // The transfer is "overlapped": the process continues
                // immediately; durability is acked to the engine later.
                self.to_proc(ProcReply::CkptCommitted)?;
            }
            ProcRequest::Finish => {
                // Ship any still-pending reception events before going
                // into serve-only mode: the event log must cover every
                // delivery the finished run consumed.
                self.engine
                    .handle(Input::FlushEvents)
                    .expect("flush cannot diverge");
                self.finalized = true;
                let clock = self.engine.clock();
                self.engine
                    .recorder()
                    .record(clock, mvr_obs::ProtoEvent::Finish { clock });
                let _ = self.identity.send(
                    NodeId::Dispatcher,
                    DispatcherMsg::Finalized {
                        rank: self.rank,
                        metrics: *self.engine.metrics(),
                        timings: self.engine.timings().clone(),
                    },
                );
                self.to_proc(ProcReply::Done)?;
                // Keep serving the protocol: peers may still need our
                // sender log for their recovery.
            }
        }
        Ok(())
    }

    fn to_proc(&self, reply: ProcReply) -> Result<(), DaemonEnd> {
        match self.identity.send(NodeId::Process(self.rank), reply) {
            Ok(()) => Ok(()),
            // The process died with us (kill) — unwind.
            Err(SendError::SenderDead) => Err(DaemonEnd::Killed),
            // Process gone but we are alive: teardown race; keep serving.
            Err(SendError::Disconnected(_)) => {
                if self.engine.recorder().trace_stderr() {
                    eprintln!("[dmn r{}] DROP proc reply (process slot dead)", self.rank.0);
                }
                Ok(())
            }
        }
    }

    fn pump_outputs(&mut self) -> Result<(), DaemonEnd> {
        for out in self.engine.drain_outputs() {
            match out {
                Output::Transmit { to, msg } => {
                    let data_clock = match &msg {
                        mvr_core::PeerMsg::Data(d) => Some(d.id.sender_clock),
                        _ => None,
                    };
                    match self.identity.send(
                        NodeId::Computing(to),
                        DaemonMsg::Peer {
                            from: self.rank,
                            msg,
                        },
                    ) {
                        Ok(()) => {}
                        Err(SendError::SenderDead) => return Err(DaemonEnd::Killed),
                        // Dead peer: the message stays in SAVED; its
                        // restart will pull it via RESTART1. Retract the
                        // optimistic HS advance so no checkpoint records a
                        // transmission that never happened (the restart
                        // handshake heals live state, but a persisted
                        // inflated mark would suppress the healing
                        // re-sends after our own restart).
                        Err(SendError::Disconnected(_)) => {
                            if let Some(h) = data_clock {
                                self.engine.on_transmit_dropped(to, h);
                            }
                        }
                    }
                }
                Output::LogEvents(batch) => {
                    // Fan the batch out to every replica of our shard; a
                    // write is durable once a quorum *acks* it — the
                    // gate enforces that, so a sub-quorum fan-out (some
                    // replicas dead mid-revival) is tolerable here: the
                    // gate simply stays closed until the revived
                    // replica's catch-up announcement re-acks. Only a
                    // fan-out that reached no replica at all (R = 1:
                    // the one EL dead past the retry window) breaks the
                    // deployment's reliability assumption; halt.
                    let mut stored = 0u32;
                    let last = self.el_nodes.len() - 1;
                    let mut batch = Some(batch);
                    for (i, el_node) in self.el_nodes.iter().enumerate() {
                        // The last replica takes the batch by move, so
                        // the unreplicated hot path stays clone-free.
                        let b = if i == last {
                            batch.take().expect("batch moved early")
                        } else {
                            batch.as_ref().expect("batch moved early").clone()
                        };
                        match send_service_retrying(
                            &self.identity,
                            *el_node,
                            ElPacket {
                                from: self.rank,
                                req: ElRequest::Log(b),
                            },
                            8,
                        ) {
                            Ok(()) => stored += 1,
                            Err(SendError::SenderDead) => return Err(DaemonEnd::Killed),
                            // A dead replica mid-revival: the quorum
                            // below decides whether we can proceed.
                            Err(SendError::Disconnected(_)) => {}
                        }
                    }
                    if stored == 0 {
                        return Err(DaemonEnd::Killed);
                    }
                }
                Output::Deliver { from, payload } => {
                    self.to_proc(ProcReply::Msg { from, payload })?;
                }
                Output::ProbeAnswer(b) => self.to_proc(ProcReply::Probe(b))?,
                Output::ElTruncate { up_to } => {
                    // Best-effort storage reclamation on every replica.
                    for el_node in &self.el_nodes {
                        let _ = self.identity.send(
                            *el_node,
                            ElPacket {
                                from: self.rank,
                                req: ElRequest::Truncate {
                                    rank: self.rank,
                                    up_to,
                                },
                            },
                        );
                    }
                }
                Output::ReplayComplete => {}
            }
        }
        Ok(())
    }
}
