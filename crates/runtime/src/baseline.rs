//! Live hosting of the comparison protocols: the MPICH-V1 baseline
//! (pessimistic logging on reliable Channel Memories, §3.2) and the
//! MPICH-P4 baseline (no fault tolerance).
//!
//! The MPI process side is identical to V2 (the channel interface hides
//! the protocol, §4.4); only the daemon and the services differ:
//!
//! * **V1** — every send is pushed to the *receiver's* Channel Memory;
//!   receives pull reception `seq` numbers from the node's own CM. A
//!   restarted process replays its receptions by re-pulling from its
//!   reception index — recovery needs no cooperation from the other
//!   computing nodes at all ("a process re-execution is independent of
//!   the other processes of the system"). Our V1 hosting restarts from
//!   scratch (no Condor images), which the CM replay makes exact.
//! * **P4** — direct transmission. A crash is fatal to the run (there is
//!   nothing to replay from), exactly like the real MPICH-P4.

use crate::messages::{DaemonMsg, DispatcherMsg, ProcReply, ProcRequest};
use mvr_core::baseline::p4::{P4Engine, P4Output};
use mvr_core::baseline::v1::{ChannelMemory, V1Engine, V1Output};
use mvr_core::{CmReply, CmRequest, NodeId, Rank};
use mvr_net::{Fabric, Identity, Mailbox, RecvError, SendError};
use std::thread::JoinHandle;

/// One inbound request to a Channel Memory node: which owner's repository,
/// who asked (for the reply route), and the request.
#[derive(Clone, Debug)]
pub struct CmPacket {
    /// The rank whose repository is addressed.
    pub owner: Rank,
    /// The requesting daemon (replies go to `Computing(from)`).
    pub from: Rank,
    /// The request.
    pub req: CmRequest,
}

/// Map a rank to its Channel Memory node (the paper used about N/4 CMs;
/// we default to one per 4 ranks, minimum one).
pub fn cm_for_rank(rank: Rank, cms: u32) -> NodeId {
    NodeId::ChannelMemory(rank.0 % cms.max(1))
}

/// Number of Channel Memories for a world size (the paper's N/4 rule).
pub fn default_cms(world: u32) -> u32 {
    world.div_ceil(4).max(1)
}

/// Spawn the Channel Memory services. Each CM node hosts the repositories
/// of every rank mapped to it.
pub fn spawn_channel_memories(fabric: &Fabric, _world: u32, cms: u32) -> Vec<JoinHandle<()>> {
    (0..cms.max(1))
        .map(|i| {
            let (mb, identity) = fabric.register::<CmPacket>(NodeId::ChannelMemory(i));
            std::thread::Builder::new()
                .name(format!("cm-{i}"))
                .spawn(move || {
                    let mut repos: std::collections::BTreeMap<Rank, ChannelMemory> =
                        Default::default();
                    loop {
                        let pkt = match mb.recv() {
                            Ok(p) => p,
                            Err(RecvError::Killed) | Err(RecvError::Timeout) => return,
                        };
                        let repo = repos
                            .entry(pkt.owner)
                            .or_insert_with(|| ChannelMemory::new(pkt.owner));
                        for reply in repo.handle(pkt.req) {
                            // Push acks return to the pusher; messages and
                            // probe answers to the owner.
                            let to = match &reply {
                                CmReply::PushAck => pkt.from,
                                _ => pkt.owner,
                            };
                            let _ = identity.send(NodeId::Computing(to), DaemonMsg::Cm(reply));
                        }
                    }
                })
                .expect("spawn channel memory")
        })
        .collect()
}

/// The V1 communication-daemon loop.
pub fn daemon_main_v1(
    mailbox: Mailbox<DaemonMsg>,
    identity: Identity,
    rank: Rank,
    world: u32,
    cms: u32,
) {
    let mut engine = V1Engine::new(rank);
    let mut finalized = false;
    loop {
        let msg = match mailbox.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        match msg {
            DaemonMsg::Proc(req) => match req {
                ProcRequest::Init => {
                    let _ = identity.send(
                        NodeId::Process(rank),
                        ProcReply::InitOk {
                            rank,
                            size: world,
                            restored_mpi_state: None,
                            restored_app_state: None,
                        },
                    );
                }
                ProcRequest::Bsend { dst, bytes } => engine.app_send(dst, bytes),
                ProcRequest::Brecv => engine.app_recv(),
                ProcRequest::Nprobe => engine.app_probe(),
                ProcRequest::CkptPoll => {
                    // V1 hosting restarts from scratch; no checkpoints.
                    let _ = identity.send(NodeId::Process(rank), ProcReply::CkptPending(false));
                }
                ProcRequest::CkptCommit { .. } => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::CkptCommitted);
                }
                ProcRequest::Finish => {
                    finalized = true;
                    let _ = identity.send(
                        NodeId::Dispatcher,
                        DispatcherMsg::Finalized {
                            rank,
                            metrics: *engine.metrics(),
                            timings: Default::default(),
                        },
                    );
                    let _ = identity.send(NodeId::Process(rank), ProcReply::Done);
                }
            },
            DaemonMsg::Cm(reply) => engine.on_cm_reply(reply),
            // No peer traffic, EL, or checkpoint system in V1 hosting.
            _ => {}
        }
        for out in engine.drain_outputs() {
            match out {
                V1Output::ToCm { owner, req } => {
                    let _ = identity.send(
                        cm_for_rank(owner, cms),
                        CmPacket {
                            owner,
                            from: rank,
                            req,
                        },
                    );
                }
                V1Output::Deliver { from, payload } => {
                    if identity
                        .send(NodeId::Process(rank), ProcReply::Msg { from, payload })
                        .is_err()
                        && !finalized
                    {
                        return;
                    }
                }
                V1Output::ProbeAnswer(b) => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::Probe(b));
                }
            }
        }
    }
}

/// The P4 communication-daemon loop (direct transmission).
pub fn daemon_main_p4(mailbox: Mailbox<DaemonMsg>, identity: Identity, rank: Rank, world: u32) {
    let mut engine = P4Engine::new(rank);
    loop {
        let msg = match mailbox.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        match msg {
            DaemonMsg::Proc(req) => match req {
                ProcRequest::Init => {
                    let _ = identity.send(
                        NodeId::Process(rank),
                        ProcReply::InitOk {
                            rank,
                            size: world,
                            restored_mpi_state: None,
                            restored_app_state: None,
                        },
                    );
                }
                ProcRequest::Bsend { dst, bytes } => engine.app_send(dst, bytes),
                ProcRequest::Brecv => engine.app_recv(),
                ProcRequest::Nprobe => engine.app_probe(),
                ProcRequest::CkptPoll => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::CkptPending(false));
                }
                ProcRequest::CkptCommit { .. } => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::CkptCommitted);
                }
                ProcRequest::Finish => {
                    let _ = identity.send(
                        NodeId::Dispatcher,
                        DispatcherMsg::Finalized {
                            rank,
                            metrics: *engine.metrics(),
                            timings: Default::default(),
                        },
                    );
                    let _ = identity.send(NodeId::Process(rank), ProcReply::Done);
                }
            },
            DaemonMsg::Peer { from, msg } => engine.on_peer(from, msg),
            _ => {}
        }
        for out in engine.drain_outputs() {
            match out {
                P4Output::Transmit { to, msg } => {
                    match identity.send(NodeId::Computing(to), DaemonMsg::Peer { from: rank, msg })
                    {
                        Ok(()) | Err(SendError::Disconnected(_)) => {}
                        Err(SendError::SenderDead) => return,
                    }
                }
                P4Output::Deliver { from, payload } => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::Msg { from, payload });
                }
                P4Output::ProbeAnswer(b) => {
                    let _ = identity.send(NodeId::Process(rank), ProcReply::Probe(b));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_mapping_covers_all_ranks() {
        for world in [1u32, 4, 7, 32] {
            let cms = default_cms(world);
            for r in 0..world {
                let NodeId::ChannelMemory(i) = cm_for_rank(Rank(r), cms) else {
                    panic!()
                };
                assert!(i < cms);
            }
        }
        assert_eq!(default_cms(32), 8); // the paper's N/4
        assert_eq!(default_cms(1), 1);
    }
}
