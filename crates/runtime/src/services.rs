//! The auxiliary service threads of a deployment: event loggers, the
//! checkpoint server and the checkpoint scheduler (Fig. 3).

use crate::messages::DaemonMsg;
use mvr_ckpt::{CheckpointStore, CkptPacket, NodeStatus, Policy, Scheduler};
use mvr_core::{NodeId, Rank, SchedMsg};
use mvr_eventlog::ElPacket;
use mvr_net::{Fabric, RecvError};
use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Spawn `count` event loggers. Each serves the ranks assigned by
/// [`mvr_eventlog::el_for_rank`]. The second return value holds one
/// live counter per logger exposing its cumulative *unique*-event count
/// ([`mvr_eventlog::run_event_logger_counted`]) — the conservation
/// tests read these after a run to check that crash recovery never
/// double-logged a logical delivery.
pub fn spawn_event_loggers(
    fabric: &Fabric,
    count: u32,
) -> (Vec<JoinHandle<()>>, Vec<Arc<AtomicU64>>) {
    let counters: Vec<Arc<AtomicU64>> = (0..count).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let handles = (0..count)
        .map(|i| {
            let (mb, identity) = fabric.register::<ElPacket>(NodeId::EventLogger(i));
            let counter = counters[i as usize].clone();
            std::thread::Builder::new()
                .name(format!("el-{i}"))
                .spawn(move || {
                    let _ = mvr_eventlog::run_event_logger_counted(
                        mb,
                        move |rank, reply| {
                            identity
                                .send(NodeId::Computing(rank), DaemonMsg::El(reply))
                                .is_ok()
                        },
                        counter,
                    );
                })
                .expect("spawn event logger")
        })
        .collect();
    (handles, counters)
}

/// Spawn the checkpoint server with a private, volatile store.
pub fn spawn_checkpoint_server(fabric: &Fabric) -> JoinHandle<()> {
    spawn_checkpoint_server_on(fabric, Arc::new(Mutex::new(CheckpointStore::new())))
}

/// Spawn the checkpoint server serving a shared store — the *stable
/// storage* that survives crashes of the server process itself. The
/// dispatcher passes the same store to every CS incarnation, so images
/// acked before a crash are served after the relaunch (and event-log
/// truncation against those images stays sound; see §4.3 notes in
/// `mvr_ckpt::service`). Incarnations serialize on the store lock: a
/// relaunch blocks until the killed predecessor has drained out.
pub fn spawn_checkpoint_server_on(
    fabric: &Fabric,
    store: Arc<Mutex<CheckpointStore>>,
) -> JoinHandle<()> {
    let (mb, identity) = fabric.register::<CkptPacket>(NodeId::CheckpointServer(0));
    std::thread::Builder::new()
        .name("ckpt-server".into())
        .spawn(move || {
            let mut store = store.lock();
            mvr_ckpt::run_checkpoint_server_on(mb, &mut store, move |rank, reply| {
                identity
                    .send(NodeId::Computing(rank), DaemonMsg::Ckpt(reply))
                    .is_ok()
            });
        })
        .expect("spawn checkpoint server")
}

/// Checkpoint-scheduler configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Selection policy.
    pub policy: Policy,
    /// Pause between scheduling rounds (the paper's Fig. 11 setup
    /// checkpoints continuously: use a tiny interval).
    pub interval: Duration,
    /// How long to gather status replies each round.
    pub gather_window: Duration,
    /// How long to wait for the ordered checkpoint to complete.
    pub completion_timeout: Duration,
    /// RNG seed for the random policy.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: Policy::RoundRobin,
            interval: Duration::from_millis(5),
            gather_window: Duration::from_millis(3),
            completion_timeout: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// Spawn the checkpoint scheduler (§4.6.2): periodically gathers daemon
/// statuses, picks a victim by policy, orders a checkpoint, and waits for
/// its completion before ordering the next.
pub fn spawn_checkpoint_scheduler(
    fabric: &Fabric,
    world: u32,
    cfg: SchedulerConfig,
) -> JoinHandle<()> {
    let (mb, identity) = fabric.register::<SchedMsg>(NodeId::CheckpointScheduler);
    std::thread::Builder::new()
        .name("ckpt-scheduler".into())
        .spawn(move || {
            let mut sched = Scheduler::new(cfg.policy, world, cfg.seed);
            let mut last_status: Vec<NodeStatus> = Vec::new();
            loop {
                // Pause between rounds; a kill during the pause is
                // detected by the next mailbox operation.
                match mb.recv_timeout(cfg.interval) {
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::Killed) => return,
                    Ok(_) => {} // stray message between rounds
                }
                // Gather statuses.
                for r in 0..world {
                    let _ = identity.send(
                        NodeId::Computing(Rank(r)),
                        DaemonMsg::Sched(SchedMsg::StatusRequest),
                    );
                }
                let deadline = std::time::Instant::now() + cfg.gather_window;
                let mut statuses: Vec<NodeStatus> = Vec::new();
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match mb.recv_timeout(left) {
                        Ok(SchedMsg::Status {
                            rank,
                            logged_bytes,
                            sent_bytes,
                            recv_bytes,
                            el_batches,
                            el_events,
                            el_acks,
                            el_max_batch,
                            timings,
                        }) => {
                            statuses.push(NodeStatus {
                                rank,
                                logged_bytes,
                                sent_bytes,
                                recv_bytes,
                                el_batches,
                                el_events,
                                el_acks,
                                el_max_batch,
                                timings,
                            });
                        }
                        Ok(_) => {}
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Killed) => return,
                    }
                }
                if !statuses.is_empty() {
                    last_status = statuses.clone();
                }
                // Order one checkpoint and await completion.
                let Some(victim) = sched.pick(&statuses) else {
                    continue;
                };
                if identity
                    .send(
                        NodeId::Computing(victim),
                        DaemonMsg::Sched(SchedMsg::CheckpointOrder),
                    )
                    .is_err()
                {
                    continue; // victim currently dead
                }
                let deadline = std::time::Instant::now() + cfg.completion_timeout;
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break; // victim stalled or died: move on
                    }
                    match mb.recv_timeout(left) {
                        Ok(SchedMsg::CheckpointDone { rank, .. }) if rank == victim => {
                            let st = last_status.iter().find(|s| s.rank == victim).copied();
                            sched.on_checkpoint_done(victim, st.as_ref());
                            break;
                        }
                        Ok(_) => {}
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Killed) => return,
                    }
                }
            }
        })
        .expect("spawn checkpoint scheduler")
}
