//! The auxiliary service threads of a deployment: event loggers, the
//! checkpoint server and the checkpoint scheduler (Fig. 3).

use crate::messages::DaemonMsg;
use mvr_ckpt::{CheckpointStore, CkptPacket, NodeStatus, Policy, Scheduler};
use mvr_core::{ElAddr, NodeId, Rank, SchedMsg};
use mvr_eventlog::{ElPacket, EventLogStore};
use mvr_net::{Fabric, RecvError};
use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Spawn one event-logger replica serving `addr`'s shard on a shared
/// ledger. The ledger [`EventLogStore`] outlives the service thread —
/// the dispatcher keeps the `Arc` so a killed replica's events survive
/// its thread, and a revival absorbs a live peer's ledger into the same
/// store before respawning on it. Replies are stamped with `addr` so
/// daemons can attribute acks to replicas for quorum accounting.
pub fn spawn_el_replica(
    fabric: &Fabric,
    addr: ElAddr,
    replicas: u32,
    counter: Arc<AtomicU64>,
    store: Arc<Mutex<EventLogStore>>,
) -> JoinHandle<()> {
    let flat = addr.flat(replicas);
    let (mb, identity) = fabric.register::<ElPacket>(NodeId::EventLogger(flat));
    // Unreplicated deployments keep the historical thread names.
    let name = if replicas <= 1 {
        format!("el-{}", addr.shard)
    } else {
        addr.to_string()
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let _ = mvr_eventlog::run_event_logger_on(
                mb,
                move |rank, reply| {
                    identity
                        .send(NodeId::Computing(rank), DaemonMsg::El { from: addr, reply })
                        .is_ok()
                },
                counter,
                store,
            );
        })
        .expect("spawn event logger")
}

/// Spawn `shards × replicas` event-logger replicas, flat-indexed
/// (`flat = shard * replicas + replica`). Ranks are partitioned across
/// shards by the consistent-hash [`mvr_eventlog::ShardMap`]; every
/// replica of a shard holds the full shard ledger. The second return
/// value holds one live counter per replica exposing its cumulative
/// *unique*-event count — the conservation tests fold these into the
/// merged cluster view ([`mvr_eventlog::merged_unique_events`]) to
/// check that crash recovery never double-logged a logical delivery.
/// The third holds each replica's shared ledger for crash-surviving
/// revival.
#[allow(clippy::type_complexity)]
pub fn spawn_event_loggers(
    fabric: &Fabric,
    shards: u32,
    replicas: u32,
) -> (
    Vec<JoinHandle<()>>,
    Vec<Arc<AtomicU64>>,
    Vec<Arc<Mutex<EventLogStore>>>,
) {
    let replicas = replicas.max(1);
    let total = (shards * replicas) as usize;
    let counters: Vec<Arc<AtomicU64>> = (0..total).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let stores: Vec<Arc<Mutex<EventLogStore>>> = (0..total)
        .map(|_| Arc::new(Mutex::new(EventLogStore::new())))
        .collect();
    let handles = (0..total as u32)
        .map(|flat| {
            spawn_el_replica(
                fabric,
                ElAddr::from_flat(flat, replicas),
                replicas,
                counters[flat as usize].clone(),
                stores[flat as usize].clone(),
            )
        })
        .collect();
    (handles, counters, stores)
}

/// Spawn the checkpoint server with a private, volatile store.
pub fn spawn_checkpoint_server(fabric: &Fabric) -> JoinHandle<()> {
    spawn_checkpoint_server_on(fabric, Arc::new(Mutex::new(CheckpointStore::new())))
}

/// Spawn the checkpoint server serving a shared store — the *stable
/// storage* that survives crashes of the server process itself. The
/// dispatcher passes the same store to every CS incarnation, so images
/// acked before a crash are served after the relaunch (and event-log
/// truncation against those images stays sound; see §4.3 notes in
/// `mvr_ckpt::service`). Incarnations serialize on the store lock: a
/// relaunch blocks until the killed predecessor has drained out.
pub fn spawn_checkpoint_server_on(
    fabric: &Fabric,
    store: Arc<Mutex<CheckpointStore>>,
) -> JoinHandle<()> {
    let (mb, identity) = fabric.register::<CkptPacket>(NodeId::CheckpointServer(0));
    std::thread::Builder::new()
        .name("ckpt-server".into())
        .spawn(move || {
            let mut store = store.lock();
            mvr_ckpt::run_checkpoint_server_on(mb, &mut store, move |rank, reply| {
                identity
                    .send(NodeId::Computing(rank), DaemonMsg::Ckpt(reply))
                    .is_ok()
            });
        })
        .expect("spawn checkpoint server")
}

/// Checkpoint-scheduler configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Selection policy.
    pub policy: Policy,
    /// Pause between scheduling rounds (the paper's Fig. 11 setup
    /// checkpoints continuously: use a tiny interval).
    pub interval: Duration,
    /// How long to gather status replies each round.
    pub gather_window: Duration,
    /// How long to wait for the ordered checkpoint to complete.
    pub completion_timeout: Duration,
    /// RNG seed for the random policy.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: Policy::RoundRobin,
            interval: Duration::from_millis(5),
            gather_window: Duration::from_millis(3),
            completion_timeout: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// Spawn the checkpoint scheduler (§4.6.2): periodically gathers daemon
/// statuses, picks a victim by policy, orders a checkpoint, and waits for
/// its completion before ordering the next.
pub fn spawn_checkpoint_scheduler(
    fabric: &Fabric,
    world: u32,
    cfg: SchedulerConfig,
) -> JoinHandle<()> {
    let (mb, identity) = fabric.register::<SchedMsg>(NodeId::CheckpointScheduler);
    std::thread::Builder::new()
        .name("ckpt-scheduler".into())
        .spawn(move || {
            let mut sched = Scheduler::new(cfg.policy, world, cfg.seed);
            let mut last_status: Vec<NodeStatus> = Vec::new();
            loop {
                // Pause between rounds; a kill during the pause is
                // detected by the next mailbox operation.
                match mb.recv_timeout(cfg.interval) {
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::Killed) => return,
                    Ok(_) => {} // stray message between rounds
                }
                // Gather statuses.
                for r in 0..world {
                    let _ = identity.send(
                        NodeId::Computing(Rank(r)),
                        DaemonMsg::Sched(SchedMsg::StatusRequest),
                    );
                }
                let deadline = std::time::Instant::now() + cfg.gather_window;
                let mut statuses: Vec<NodeStatus> = Vec::new();
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    match mb.recv_timeout(left) {
                        Ok(SchedMsg::Status {
                            rank,
                            logged_bytes,
                            sent_bytes,
                            recv_bytes,
                            el_batches,
                            el_events,
                            el_acks,
                            el_max_batch,
                            timings,
                        }) => {
                            statuses.push(NodeStatus {
                                rank,
                                logged_bytes,
                                sent_bytes,
                                recv_bytes,
                                el_batches,
                                el_events,
                                el_acks,
                                el_max_batch,
                                timings,
                            });
                        }
                        Ok(_) => {}
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Killed) => return,
                    }
                }
                if !statuses.is_empty() {
                    last_status = statuses.clone();
                }
                // Order one checkpoint and await completion.
                let Some(victim) = sched.pick(&statuses) else {
                    continue;
                };
                if identity
                    .send(
                        NodeId::Computing(victim),
                        DaemonMsg::Sched(SchedMsg::CheckpointOrder),
                    )
                    .is_err()
                {
                    continue; // victim currently dead
                }
                let deadline = std::time::Instant::now() + cfg.completion_timeout;
                loop {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    if left.is_zero() {
                        break; // victim stalled or died: move on
                    }
                    match mb.recv_timeout(left) {
                        Ok(SchedMsg::CheckpointDone { rank, .. }) if rank == victim => {
                            let st = last_status.iter().find(|s| s.rank == victim).copied();
                            sched.on_checkpoint_done(victim, st.as_ref());
                            break;
                        }
                        Ok(_) => {}
                        Err(RecvError::Timeout) => break,
                        Err(RecvError::Killed) => return,
                    }
                }
            }
        })
        .expect("spawn checkpoint scheduler")
}
