//! The daemon-backed [`Channel`] implementation handed to MPI processes.
//!
//! Each call translates to a request over the process↔daemon "UNIX
//! socket" (a pair of fabric mailboxes). A dead daemon (or a killed
//! process incarnation) surfaces as [`MpiError::Killed`], which
//! well-behaved applications propagate so the thread unwinds fail-stop.

use crate::messages::{ProcReply, ProcRequest};
use mvr_core::{NodeId, Payload, Rank};
use mvr_mpi::{Channel, ChannelInfo, MpiError, MpiResult};
use mvr_net::{Identity, Mailbox, RecvError, SendError};

/// The process side of the process↔daemon connection.
pub struct DaemonChannel {
    rank: Rank,
    daemon: NodeId,
    identity: Identity,
    inbox: Mailbox<ProcReply>,
}

impl DaemonChannel {
    /// Build the channel for `rank`; `identity` is the process-node
    /// incarnation credential, `inbox` its reply mailbox.
    pub fn new(rank: Rank, identity: Identity, inbox: Mailbox<ProcReply>) -> Self {
        DaemonChannel {
            rank,
            daemon: NodeId::Computing(rank),
            identity,
            inbox,
        }
    }

    fn send(&self, req: ProcRequest) -> MpiResult<()> {
        self.identity
            .send(self.daemon, crate::messages::DaemonMsg::Proc(req))
            .map_err(|e: SendError| match e {
                SendError::Disconnected(_) | SendError::SenderDead => MpiError::Killed,
            })
    }

    fn recv(&self) -> MpiResult<ProcReply> {
        self.inbox.recv().map_err(|e: RecvError| match e {
            RecvError::Killed | RecvError::Timeout => MpiError::Killed,
        })
    }
}

impl Channel for DaemonChannel {
    fn init(&mut self) -> MpiResult<ChannelInfo> {
        self.send(ProcRequest::Init)?;
        match self.recv()? {
            ProcReply::InitOk {
                rank,
                size,
                restored_mpi_state,
                restored_app_state,
            } => {
                debug_assert_eq!(rank, self.rank);
                Ok(ChannelInfo {
                    rank,
                    size,
                    restored_mpi_state,
                    restored_app_state,
                })
            }
            other => Err(MpiError::Protocol(format!(
                "unexpected init reply: {other:?}"
            ))),
        }
    }

    fn bsend(&mut self, dst: Rank, bytes: Payload) -> MpiResult<()> {
        self.send(ProcRequest::Bsend { dst, bytes })
    }

    fn brecv(&mut self) -> MpiResult<(Rank, Payload)> {
        self.send(ProcRequest::Brecv)?;
        match self.recv()? {
            ProcReply::Msg { from, payload } => Ok((from, payload)),
            other => Err(MpiError::Protocol(format!(
                "unexpected brecv reply: {other:?}"
            ))),
        }
    }

    fn nprobe(&mut self) -> MpiResult<bool> {
        self.send(ProcRequest::Nprobe)?;
        match self.recv()? {
            ProcReply::Probe(b) => Ok(b),
            other => Err(MpiError::Protocol(format!(
                "unexpected probe reply: {other:?}"
            ))),
        }
    }

    fn finish(&mut self) -> MpiResult<()> {
        self.send(ProcRequest::Finish)?;
        match self.recv()? {
            ProcReply::Done => Ok(()),
            other => Err(MpiError::Protocol(format!(
                "unexpected finish reply: {other:?}"
            ))),
        }
    }

    fn checkpoint_pending(&mut self) -> MpiResult<bool> {
        self.send(ProcRequest::CkptPoll)?;
        match self.recv()? {
            ProcReply::CkptPending(b) => Ok(b),
            other => Err(MpiError::Protocol(format!(
                "unexpected poll reply: {other:?}"
            ))),
        }
    }

    fn commit_checkpoint(&mut self, mpi_state: Payload, app_state: Payload) -> MpiResult<()> {
        self.send(ProcRequest::CkptCommit {
            mpi_state,
            app_state,
        })?;
        match self.recv()? {
            ProcReply::CkptCommitted => Ok(()),
            other => Err(MpiError::Protocol(format!(
                "unexpected commit reply: {other:?}"
            ))),
        }
    }
}
