//! Minimal Unix signal plumbing for the multi-process deployment — raw
//! `kill(2)`/`signal(2)` FFI so the supervisor can deliver real
//! `SIGKILL`s (chaos), escalate `SIGTERM` on slow teardown, and itself
//! die gracefully on `SIGINT`/`SIGTERM` without orphaning children.
//!
//! Deliberately libc-free: the runtime links no external crates beyond
//! the vendored workspace set, and the four calls needed here are stable
//! C ABI on every Unix we target. On non-Unix hosts everything degrades
//! to no-ops (the socket backend is Unix-only; the in-process fabric is
//! the portable default).

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGKILL` — unblockable kill; what chaos events deliver.
pub const SIGKILL: i32 = 9;
/// `SIGTERM` — polite termination request.
pub const SIGTERM: i32 = 15;

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn signal(signum: i32, handler: usize) -> usize;
    }

    // A lock-free atomic store is async-signal-safe; nothing else
    // happens in handler context.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn send_signal(pid: u32, sig: i32) -> bool {
        if pid == 0 {
            return false; // never signal "every process in our group"
        }
        unsafe { kill(pid as i32, sig) == 0 }
    }

    pub fn install_shutdown_handler() {
        unsafe {
            signal(super::SIGINT, on_signal as *const () as usize);
            signal(super::SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn send_signal(_pid: u32, _sig: i32) -> bool {
        false
    }
    pub fn install_shutdown_handler() {}
}

/// Send `sig` to `pid`. Returns whether the kernel accepted it (false
/// also when the process is already gone). With `sig == 0` this is a
/// pure liveness probe: true iff the process still exists.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    imp::send_signal(pid, sig)
}

/// Install `SIGINT`/`SIGTERM` handlers that set a flag readable via
/// [`shutdown_requested`] — the supervisor polls it and runs the
/// graceful teardown (signal children, deadline, escalate, reap).
pub fn install_shutdown_handler() {
    imp::install_shutdown_handler()
}

/// Whether a `SIGINT`/`SIGTERM` arrived since
/// [`install_shutdown_handler`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn signal_zero_probes_liveness() {
        let me = std::process::id();
        assert!(send_signal(me, 0), "we are alive");
        // PID 0 is refused outright (would target the process group).
        assert!(!send_signal(0, 0));
    }
}
