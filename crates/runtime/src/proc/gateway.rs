//! The transport↔fabric bridge of the multi-process deployment.
//!
//! Each OS process runs the **unchanged** in-process runtime (daemon,
//! MPI process, service threads) over a private [`Fabric`]; the gateway
//! splices that fabric onto a [`Transport`] endpoint:
//!
//! - **outbound** — for every node that lives in *another* process it
//!   registers a proxy mailbox on the local fabric and drains it from a
//!   forwarder thread, flattening each envelope into a [`WireMsg`] frame
//!   sent to the transport peer hosting the destination;
//! - **inbound** — a pump thread polls the transport, decodes frames and
//!   injects data-plane messages straight into the local real mailboxes
//!   via [`Fabric::send_from_reliable`]. Control-plane traffic (hello,
//!   address maps, results, revival chatter) and fail-stop detector
//!   events ([`TransportEvent::PeerUp`]/[`PeerDown`]) surface on the
//!   [`Control`] channel for the role-specific glue to consume.
//!
//! Because the protocol threads only ever talk to mailboxes, recovery,
//! the EL quorum failover and the invariant monitor run identically over
//! sockets and over the in-process fabric — the gateway is pure plumbing
//! with no protocol knowledge beyond the envelope-to-wire mapping.
//!
//! [`PeerDown`]: TransportEvent::PeerDown

use super::wire::WireMsg;
use crate::messages::{DaemonMsg, DispatcherMsg};
use mvr_ckpt::CkptPacket;
use mvr_core::{NodeId, Rank, SchedMsg};
use mvr_eventlog::ElPacket;
use mvr_net::{DownCause, Fabric, Transport, TransportEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Which node kind this process hosts — decides the proxy set and the
/// inbound routing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayRole {
    /// A computing node (daemon + MPI process) of rank `0`'s field.
    Rank(Rank),
    /// An event-logger replica, by flat index.
    EventLogger(u32),
    /// The checkpoint server.
    CheckpointServer,
    /// The supervising dispatcher (hosts the checkpoint scheduler).
    Supervisor,
}

/// Deployment shape the gateway needs to enumerate remote nodes.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of computing nodes.
    pub world: u32,
    /// Flat event-logger replica count (`shards × replicas`).
    pub el_total: u32,
}

/// Everything the role glue (child main loop or supervisor) consumes
/// from the gateway: control-plane wire messages and detector events.
// `WireMsg` dominates the size, but this is the low-rate control plane
// (hellos, verdicts, results) — boxing would cost an allocation per
// message and box-patterns at every match for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Control {
    /// A control-plane message from `from`'s endpoint.
    Msg {
        /// Sending endpoint.
        from: NodeId,
        /// The message.
        msg: WireMsg,
    },
    /// A transport link to `peer` came up.
    PeerUp {
        /// The peer endpoint.
        peer: NodeId,
        /// Its hello incarnation.
        incarnation: u64,
    },
    /// The fail-stop detector declared `peer` down.
    PeerDown {
        /// The peer endpoint.
        peer: NodeId,
        /// The incarnation the verdict is about; a supervisor that has
        /// already launched a newer one treats the verdict as stale.
        incarnation: u64,
        /// Why (EOF, read timeout, I/O error, …).
        cause: DownCause,
    },
}

/// Map a fabric destination to the transport endpoint hosting it.
///
/// Computing node and its MPI process share one OS process; the
/// checkpoint scheduler lives inside the supervising dispatcher.
pub fn host_of(dest: NodeId) -> NodeId {
    match dest {
        NodeId::Computing(r) | NodeId::Process(r) => NodeId::Computing(r),
        NodeId::CheckpointScheduler | NodeId::Dispatcher => NodeId::Dispatcher,
        other => other,
    }
}

/// A running bridge between one fabric and one transport endpoint.
pub struct Gateway {
    transport: Arc<dyn Transport>,
    control_rx: Receiver<Control>,
    stop: Arc<AtomicBool>,
}

impl Gateway {
    /// Register the role's proxy mailboxes on `fabric`, start the
    /// forwarder threads and the inbound pump, and return the gateway.
    ///
    /// Local real mailboxes (the daemon's, a replica's, the scheduler's)
    /// must be registered by the caller — before or after this call;
    /// inbound injection simply drops frames for destinations that are
    /// not (yet, anymore) registered, which the protocol treats as
    /// in-flight loss.
    pub fn start(
        transport: Arc<dyn Transport>,
        fabric: &Fabric,
        role: GatewayRole,
        topo: Topology,
    ) -> Gateway {
        let (control_tx, control_rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));

        match role {
            GatewayRole::Rank(me) => {
                for q in (0..topo.world).map(Rank) {
                    if q != me {
                        forward::<DaemonMsg>(fabric, &transport, NodeId::Computing(q), |m| {
                            match m {
                                DaemonMsg::Peer { from, msg } => Some(WireMsg::Peer { from, msg }),
                                // Service replies never originate here.
                                _ => None,
                            }
                        });
                    }
                }
                for f in 0..topo.el_total {
                    forward::<ElPacket>(fabric, &transport, NodeId::EventLogger(f), |p| {
                        Some(WireMsg::ElReq {
                            from: p.from,
                            req: p.req,
                        })
                    });
                }
                forward::<CkptPacket>(fabric, &transport, NodeId::CheckpointServer(0), |p| {
                    Some(WireMsg::CkptReq {
                        from: p.from,
                        req: p.req,
                    })
                });
                forward::<SchedMsg>(fabric, &transport, NodeId::CheckpointScheduler, |m| {
                    Some(WireMsg::SchedToScheduler { msg: m })
                });
                forward::<DispatcherMsg>(fabric, &transport, NodeId::Dispatcher, |m| {
                    let DispatcherMsg::Finalized {
                        rank,
                        metrics,
                        timings,
                    } = m;
                    Some(WireMsg::Finalized {
                        rank,
                        metrics,
                        timings,
                    })
                });
            }
            GatewayRole::EventLogger(_) => {
                // Replicas answer daemons; every daemon is remote.
                for q in (0..topo.world).map(Rank) {
                    forward::<DaemonMsg>(fabric, &transport, NodeId::Computing(q), |m| match m {
                        DaemonMsg::El { from, reply } => Some(WireMsg::ElRep { from, reply }),
                        _ => None,
                    });
                }
            }
            GatewayRole::CheckpointServer => {
                for q in (0..topo.world).map(Rank) {
                    forward::<DaemonMsg>(fabric, &transport, NodeId::Computing(q), |m| match m {
                        DaemonMsg::Ckpt(reply) => Some(WireMsg::CkptRep { reply }),
                        _ => None,
                    });
                }
            }
            GatewayRole::Supervisor => {
                // The scheduler's orders/status-requests to every daemon.
                for q in (0..topo.world).map(Rank) {
                    forward::<DaemonMsg>(fabric, &transport, NodeId::Computing(q), |m| match m {
                        DaemonMsg::Sched(msg) => Some(WireMsg::SchedToDaemon { msg }),
                        _ => None,
                    });
                }
            }
        }

        spawn_pump(
            transport.clone(),
            fabric.clone(),
            role,
            control_tx,
            stop.clone(),
        );

        Gateway {
            transport,
            control_rx,
            stop,
        }
    }

    /// The control/detector stream for the role glue to drain.
    pub fn control(&self) -> &Receiver<Control> {
        &self.control_rx
    }

    /// Send a control-plane message to `node`'s endpoint directly.
    pub fn send_to(&self, node: NodeId, msg: &WireMsg) {
        let _ = self.transport.send(host_of(node), msg.encode());
    }

    /// Install routes (host:port per endpoint), skipping our own entry.
    pub fn set_routes(&self, entries: &[(NodeId, String)]) {
        let me = self.transport.local_node();
        for (node, addr) in entries {
            if *node != me {
                self.transport.set_route(*node, addr.clone());
            }
        }
    }

    /// The underlying transport endpoint.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Stop the pump thread and shut the transport down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.transport.shutdown();
    }
}

/// Register a proxy mailbox for remote `node` and drain it from a
/// forwarder thread, mapping each envelope to its wire form. Envelopes
/// the closure maps to `None` are dropped (they cannot legitimately
/// target a remote node of this role).
fn forward<M: Send + 'static>(
    fabric: &Fabric,
    transport: &Arc<dyn Transport>,
    node: NodeId,
    map: impl Fn(M) -> Option<WireMsg> + Send + 'static,
) {
    let (mb, _identity) = fabric.register::<M>(node);
    let transport = transport.clone();
    let dest = host_of(node);
    std::thread::Builder::new()
        .name(format!("gw-{node}"))
        .spawn(move || {
            while let Ok(m) = mb.recv() {
                if let Some(wire) = map(m) {
                    // Send errors (peer down, endpoint closed) are
                    // in-flight loss; the protocol's retransmission and
                    // recovery paths own that case.
                    let _ = transport.send(dest, wire.encode());
                }
            }
        })
        .expect("spawn gateway forwarder");
}

/// The inbound pump: transport events → local mailboxes / control.
fn spawn_pump(
    transport: Arc<dyn Transport>,
    fabric: Fabric,
    role: GatewayRole,
    control: Sender<Control>,
    stop: Arc<AtomicBool>,
) {
    std::thread::Builder::new()
        .name("gw-pump".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let ev = match transport.poll_event(Duration::from_millis(25)) {
                    Some(ev) => ev,
                    None => continue,
                };
                let fwd = match ev {
                    TransportEvent::Frame { from, payload } => match WireMsg::decode(&payload) {
                        Ok(msg) => route(&fabric, role, &transport, from, msg),
                        // Undecodable payload on an authenticated frame:
                        // surface as a corrupt-peer detector event. The
                        // frame came over a live link, so the verdict is
                        // about whatever incarnation is current —
                        // u64::MAX keeps it from being dropped as stale.
                        Err(e) => Some(Control::PeerDown {
                            peer: from,
                            incarnation: u64::MAX,
                            cause: DownCause::Corrupt(e),
                        }),
                    },
                    TransportEvent::PeerUp { peer, incarnation } => {
                        Some(Control::PeerUp { peer, incarnation })
                    }
                    TransportEvent::PeerDown {
                        peer,
                        incarnation,
                        cause,
                    } => Some(Control::PeerDown {
                        peer,
                        incarnation,
                        cause,
                    }),
                };
                if let Some(c) = fwd {
                    if control.send(c).is_err() {
                        return; // glue dropped the gateway
                    }
                }
            }
        })
        .expect("spawn gateway pump");
}

/// Inject one inbound message: data plane into the fabric, control
/// plane up to the glue. Returns the control event to forward, if any.
fn route(
    fabric: &Fabric,
    role: GatewayRole,
    transport: &Arc<dyn Transport>,
    from: NodeId,
    msg: WireMsg,
) -> Option<Control> {
    match (role, msg) {
        // Address maps are applied here so data can flow immediately;
        // the glue still sees them (children gate startup on the first).
        (_, WireMsg::AddressMap(entries)) => {
            let me = transport.local_node();
            for (node, addr) in &entries {
                if *node != me {
                    transport.set_route(*node, addr.clone());
                }
            }
            Some(Control::Msg {
                from,
                msg: WireMsg::AddressMap(entries),
            })
        }

        (GatewayRole::Rank(me), WireMsg::Peer { from, msg }) => {
            let _ = fabric.send_from_reliable(NodeId::Computing(me), DaemonMsg::Peer { from, msg });
            None
        }
        (GatewayRole::Rank(me), WireMsg::ElRep { from, reply }) => {
            let _ = fabric.send_from_reliable(NodeId::Computing(me), DaemonMsg::El { from, reply });
            None
        }
        (GatewayRole::Rank(me), WireMsg::CkptRep { reply }) => {
            let _ = fabric.send_from_reliable(NodeId::Computing(me), DaemonMsg::Ckpt(reply));
            None
        }
        (GatewayRole::Rank(me), WireMsg::SchedToDaemon { msg }) => {
            let _ = fabric.send_from_reliable(NodeId::Computing(me), DaemonMsg::Sched(msg));
            None
        }

        (GatewayRole::EventLogger(flat), WireMsg::ElReq { from, req }) => {
            let _ = fabric.send_from_reliable(NodeId::EventLogger(flat), ElPacket { from, req });
            None
        }

        (GatewayRole::CheckpointServer, WireMsg::CkptReq { from, req }) => {
            let _ =
                fabric.send_from_reliable(NodeId::CheckpointServer(0), CkptPacket { from, req });
            None
        }

        (GatewayRole::Supervisor, WireMsg::SchedToScheduler { msg }) => {
            // Ignored when checkpointing is off (no scheduler mailbox).
            let _ = fabric.send_from_reliable(NodeId::CheckpointScheduler, msg);
            None
        }

        // Everything else — hello, shutdown, results, revival chatter,
        // violations — is the glue's business.
        (_, msg) => Some(Control::Msg { from, msg }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::PeerMsg;
    use mvr_net::MemNet;

    /// Two "processes" (separate fabrics) bridged over the in-memory
    /// transport: a peer message crosses proxy → wire → injection.
    #[test]
    fn peer_message_crosses_the_bridge() {
        let net = MemNet::new();
        let topo = Topology {
            world: 2,
            el_total: 1,
        };

        let fab0 = Fabric::new();
        let fab1 = Fabric::new();
        let t0: Arc<dyn Transport> = Arc::new(net.attach(NodeId::Computing(Rank(0))));
        let t1: Arc<dyn Transport> = Arc::new(net.attach(NodeId::Computing(Rank(1))));
        let _gw0 = Gateway::start(t0, &fab0, GatewayRole::Rank(Rank(0)), topo);
        let _gw1 = Gateway::start(t1, &fab1, GatewayRole::Rank(Rank(1)), topo);

        // Rank 1's real daemon mailbox, on its own fabric.
        let (mb1, _id1) = fab1.register::<DaemonMsg>(NodeId::Computing(Rank(1)));

        // Code on fabric 0 sends to "Computing(1)" — the gateway proxy.
        fab0.send_from_reliable(
            NodeId::Computing(Rank(1)),
            DaemonMsg::Peer {
                from: Rank(0),
                msg: PeerMsg::Restart1 { last_received: 42 },
            },
        )
        .expect("proxy registered");

        let got = mb1
            .recv_timeout(Duration::from_secs(2))
            .expect("message crossed");
        match got {
            DaemonMsg::Peer {
                from,
                msg: PeerMsg::Restart1 { last_received },
            } => {
                assert_eq!(from, Rank(0));
                assert_eq!(last_received, 42);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    /// The supervisor side routes scheduler chatter both ways and
    /// surfaces results on the control channel.
    #[test]
    fn supervisor_routing_and_control() {
        let net = MemNet::new();
        let topo = Topology {
            world: 1,
            el_total: 1,
        };

        let sup_fab = Fabric::new();
        let rank_fab = Fabric::new();
        let ts: Arc<dyn Transport> = Arc::new(net.attach(NodeId::Dispatcher));
        let tr: Arc<dyn Transport> = Arc::new(net.attach(NodeId::Computing(Rank(0))));
        let gw_sup = Gateway::start(ts, &sup_fab, GatewayRole::Supervisor, topo);
        let _gw_rank = Gateway::start(tr, &rank_fab, GatewayRole::Rank(Rank(0)), topo);

        // Scheduler (on the supervisor fabric) orders rank 0 to
        // checkpoint; the rank's daemon mailbox sees it.
        let (daemon_mb, _id) = rank_fab.register::<DaemonMsg>(NodeId::Computing(Rank(0)));
        sup_fab
            .send_from_reliable(
                NodeId::Computing(Rank(0)),
                DaemonMsg::Sched(mvr_core::SchedMsg::CheckpointOrder),
            )
            .expect("supervisor proxy registered");
        match daemon_mb.recv_timeout(Duration::from_secs(2)) {
            Ok(DaemonMsg::Sched(mvr_core::SchedMsg::CheckpointOrder)) => {}
            other => panic!("wrong message: {other:?}"),
        }

        // The rank's gateway forwards a result; the supervisor glue
        // reads it off the control channel.
        let wire = WireMsg::RankResult {
            rank: Rank(0),
            result: mvr_core::Payload::from_vec(vec![9]),
        };
        _gw_rank.send_to(NodeId::Dispatcher, &wire);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match gw_sup
                .control()
                .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
            {
                Ok(Control::Msg {
                    msg: WireMsg::RankResult { rank, result },
                    ..
                }) => {
                    assert_eq!(rank, Rank(0));
                    assert_eq!(result.as_slice(), &[9]);
                    break;
                }
                Ok(_) => continue,
                Err(e) => panic!("no result on control channel: {e}"),
            }
        }
    }
}
