//! Child-process side of the multi-process deployment.
//!
//! `mpirun --backend socket` re-executes its own binary once per
//! deployment node with an `MVR_PROC_ROLE` environment describing what
//! to host; [`maybe_run_child`] is the early-main hook that detects this
//! and never returns for children. Each child binds a **fresh ephemeral
//! port** (bind `:0`), announces it to the supervisor with a `Hello`,
//! and receives the full address map back — which is why reincarnation
//! never fights `TIME_WAIT`: a revived replica or restarted rank simply
//! announces a new port instead of rebinding the old one.
//!
//! The protocol code running inside a child is the unchanged in-process
//! runtime; only the [`super::gateway`] is socket-aware.

use super::gateway::{Control, Gateway, GatewayRole, Topology};
use super::wire::WireMsg;
use crate::node::{register_node, start_node, MpiApp, NodeConfig, Outcome, RuntimeProtocol};
use crate::services::{spawn_checkpoint_server_on, spawn_el_replica};
use mvr_core::{ElAddr, NodeId, Rank};
use mvr_net::{Fabric, TcpConfig, TcpTransport, Transport};
use mvr_obs::{
    epoch_from_unix_ns, JsonlStreamSink, ProtoEvent, RecordSink, RecorderConfig, RecorderHub,
    RotateConfig, SendDisposition, TeeSink, TelemetrySink, TelemetrySnapshot,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exit code when startup never completed (no address map, bad env).
pub const EXIT_STARTUP: i32 = 3;
/// Exit code when the supervisor's endpoint died under the child.
pub const EXIT_ORPHANED: i32 = 86;

/// Environment variable carrying the role spec
/// (`cn:<rank>` | `el:<shard>:<replica>` | `cs`).
pub const ENV_ROLE: &str = "MVR_PROC_ROLE";
/// Supervisor's `host:port`.
pub const ENV_PARENT: &str = "MVR_PROC_PARENT";
/// Shared recorder epoch, unix nanoseconds.
pub const ENV_EPOCH_NS: &str = "MVR_PROC_EPOCH_NS";
/// Supervisor-assigned incarnation of this child.
pub const ENV_INCARNATION: &str = "MVR_PROC_INCARNATION";
/// World size.
pub const ENV_WORLD: &str = "MVR_PROC_WORLD";
/// Event-logger shards.
pub const ENV_SHARDS: &str = "MVR_PROC_SHARDS";
/// Replicas per shard.
pub const ENV_REPLICAS: &str = "MVR_PROC_REPLICAS";
/// Set to `1` when this incarnation must recover (rank) or catch up
/// from a sibling (EL replica).
pub const ENV_RESTART: &str = "MVR_PROC_RESTART";
/// Directory for the crash-surviving JSONL event stream (optional).
pub const ENV_OBS: &str = "MVR_PROC_OBS";
/// Application spec, e.g. `ring 500` (rank children only).
pub const ENV_APP: &str = "MVR_PROC_APP";
/// Declared `host:port` to bind on first launch (from a program file).
/// Reincarnations ignore it and bind ephemeral — the `TIME_WAIT` fix.
pub const ENV_BIND: &str = "MVR_PROC_BIND";
/// Fail-stop detector read-timeout override, milliseconds (optional).
pub const ENV_FAIL_AFTER_MS: &str = "MVR_PROC_FAIL_AFTER_MS";
/// Signed nanosecond shift applied to this child's recorder epoch —
/// injected clock skew for testing the skew-corrected merge. A
/// positive value makes the child's timestamps read early (a clock
/// running behind), which the merge solver must raise back.
pub const ENV_EPOCH_SKEW_NS: &str = "MVR_PROC_EPOCH_SKEW_NS";
/// Set to `1` to make a rank child record a deliberate pessimism-gate
/// violation at startup — the end-to-end probe of the parent's live
/// cluster-wide invariant monitor.
pub const ENV_INJECT_VIOLATION: &str = "MVR_PROC_INJECT_VIOLATION";
/// Flush cadence of the durable JSONL stream (default 1: one
/// `write(2)` per record, the SIGKILL-durable setting).
pub const ENV_STREAM_FLUSH_EVERY: &str = "MVR_PROC_STREAM_FLUSH_EVERY";
/// Signed clock-drift rate in parts-per-billion applied to this
/// child's recorder clock — injected oscillator error for testing the
/// drift-aware (piecewise) skew correction on the merge path.
pub const ENV_DRIFT_PPB: &str = "MVR_PROC_DRIFT_PPB";
/// Rotate the durable JSONL stream after this many records per
/// segment (0 / unset = never).
pub const ENV_ROTATE_RECORDS: &str = "MVR_PROC_ROTATE_RECORDS";
/// Rotate the durable JSONL stream once a segment exceeds this many
/// bytes (0 / unset = never).
pub const ENV_ROTATE_BYTES: &str = "MVR_PROC_ROTATE_BYTES";

/// Staging capacity of the live telemetry buffer between drains.
const TELEMETRY_CAPACITY: usize = 8192;
/// Records per `WireMsg::Telemetry` frame.
const TELEMETRY_BATCH: usize = 512;
/// Snapshot-only frames are shipped at least this often even when no
/// records are staged, so the parent's aggregated health stays fresh.
const TELEMETRY_CADENCE: Duration = Duration::from_millis(100);

fn env(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

fn env_u64(name: &str, default: u64) -> u64 {
    env(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn die(detail: &str) -> ! {
    eprintln!("mvr child: {detail}");
    std::process::exit(EXIT_STARTUP);
}

/// Detector configuration shared by supervisor and children, with the
/// read-timeout threshold overridable from the environment.
pub fn transport_config() -> TcpConfig {
    let mut cfg = TcpConfig::default();
    if let Some(ms) = env(ENV_FAIL_AFTER_MS).and_then(|v| v.parse().ok()) {
        cfg.fail_after = Duration::from_millis(ms);
        cfg.heartbeat = (cfg.fail_after / 4).max(Duration::from_millis(5));
    }
    cfg
}

/// The early-main hook: when `MVR_PROC_ROLE` is set this process is a
/// deployment child — run the role and **never return**. Returns
/// `false` (quickly, no side effects) in ordinary invocations.
///
/// `make_app` resolves the `MVR_PROC_APP` spec to the application a
/// rank child runs; EL/CS children never call it.
pub fn maybe_run_child(make_app: &dyn Fn(&str) -> Option<Arc<dyn MpiApp>>) -> bool {
    let role = match env(ENV_ROLE) {
        Some(r) => r,
        None => return false,
    };
    let parent = env(ENV_PARENT).unwrap_or_else(|| die("missing MVR_PROC_PARENT"));
    let parts: Vec<&str> = role.split(':').collect();
    match parts.as_slice() {
        ["cn", rank] => {
            let rank = Rank(rank.parse().unwrap_or_else(|_| die("bad rank in role")));
            run_rank(rank, &parent, make_app)
        }
        ["el", shard, replica] => {
            let addr = ElAddr {
                shard: shard.parse().unwrap_or_else(|_| die("bad shard in role")),
                replica: replica
                    .parse()
                    .unwrap_or_else(|_| die("bad replica in role")),
            };
            run_el(addr, &parent)
        }
        ["cs"] => run_cs(&parent),
        _ => die(&format!("unknown role spec '{role}'")),
    }
}

struct ChildEnv {
    topo: Topology,
    replicas: u32,
    incarnation: u64,
    restart: bool,
    epoch_ns: u64,
    epoch_skew_ns: i64,
    drift_ppb: i64,
    inject_violation: bool,
    stream_flush_every: u32,
    rotate_records: u64,
    rotate_bytes: u64,
    obs_dir: Option<String>,
}

impl ChildEnv {
    /// The recorder epoch this child actually uses: the deployment-wide
    /// epoch shifted by any injected skew. A positive skew moves the
    /// epoch later, so every timestamp this child records reads early —
    /// exactly what a slow wall clock does to a real node.
    fn local_epoch_ns(&self) -> u64 {
        self.epoch_ns.saturating_add_signed(self.epoch_skew_ns)
    }
}

fn child_env() -> ChildEnv {
    let world = env_u64(ENV_WORLD, 0) as u32;
    if world == 0 {
        die("missing MVR_PROC_WORLD");
    }
    let shards = env_u64(ENV_SHARDS, 1) as u32;
    let replicas = env_u64(ENV_REPLICAS, 1) as u32;
    ChildEnv {
        topo: Topology {
            world,
            el_total: shards * replicas,
        },
        replicas,
        incarnation: env_u64(ENV_INCARNATION, 0),
        restart: env(ENV_RESTART).as_deref() == Some("1"),
        epoch_ns: env_u64(ENV_EPOCH_NS, 0),
        epoch_skew_ns: env(ENV_EPOCH_SKEW_NS)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        drift_ppb: env(ENV_DRIFT_PPB).and_then(|v| v.parse().ok()).unwrap_or(0),
        inject_violation: env(ENV_INJECT_VIOLATION).as_deref() == Some("1"),
        stream_flush_every: env_u64(ENV_STREAM_FLUSH_EVERY, 1).max(1) as u32,
        rotate_records: env_u64(ENV_ROTATE_RECORDS, 0),
        rotate_bytes: env_u64(ENV_ROTATE_BYTES, 0),
        obs_dir: env(ENV_OBS),
    }
}

/// Drain the telemetry buffer into `WireMsg::Telemetry` frames for the
/// supervisor. Always ships at least one frame (possibly record-free)
/// so the cumulative snapshot — counters, histograms, drop count —
/// reaches the parent even across quiet stretches.
fn ship_telemetry(gateway: &Gateway, tel: &TelemetrySink, node: &str, incarnation: u64) {
    loop {
        let records = tel.drain(TELEMETRY_BATCH);
        let done = records.len() < TELEMETRY_BATCH;
        gateway.send_to(
            NodeId::Dispatcher,
            &WireMsg::Telemetry {
                node: node.to_string(),
                incarnation,
                records,
                snapshot: tel.snapshot(),
            },
        );
        if done {
            return;
        }
    }
}

/// Bind the endpoint on an ephemeral port, route to the supervisor,
/// start the gateway and announce ourselves.
fn open_endpoint(
    node: NodeId,
    parent: &str,
    fabric: &Fabric,
    role: GatewayRole,
    ce: &ChildEnv,
) -> Gateway {
    // A program file may declare a fixed first-launch port; respawned
    // incarnations always take a fresh ephemeral one, so revival never
    // waits out `TIME_WAIT` on the previous incarnation's socket.
    let declared = env(ENV_BIND).filter(|_| ce.incarnation == 0);
    let transport = declared
        .and_then(|addr| {
            TcpTransport::bind(node, &addr, ce.incarnation, transport_config())
                .map_err(|e| eprintln!("mvr child: declared bind {addr}: {e}; using ephemeral"))
                .ok()
        })
        .map_or_else(
            || TcpTransport::bind(node, "127.0.0.1:0", ce.incarnation, transport_config()),
            Ok,
        )
        .unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    let local = transport
        .local_addr()
        .unwrap_or_else(|| die("no local addr"));
    let transport: Arc<dyn Transport> = Arc::new(transport);
    transport.set_route(NodeId::Dispatcher, parent.to_string());
    let gateway = Gateway::start(transport, fabric, role, ce.topo);
    gateway.send_to(
        NodeId::Dispatcher,
        &WireMsg::Hello {
            node,
            addr: local,
            incarnation: ce.incarnation,
        },
    );
    gateway
}

/// Block until the supervisor's address map covers the *whole*
/// deployment (every peer this node may ever address). Acting on a
/// partial map would let an early sender hit `NoRoute` and silently
/// lose a frame on a healthy channel — a loss the protocol only
/// repairs through the failure path, so it must never happen outside
/// one. This holds at restart too: recovery opens with `Restart1` and
/// `DownloadEL` traffic, and a concurrently-down peer's entry returns
/// with its reincarnation's hello (each hello re-broadcasts the map),
/// so the wait terminates. Startup is abandoned after `deadline`.
fn await_address_map(gateway: &Gateway, me: NodeId, ce: &ChildEnv, deadline: Duration) {
    let mut required: Vec<NodeId> = vec![NodeId::Dispatcher];
    required.extend((0..ce.topo.world).map(|r| NodeId::Computing(Rank(r))));
    required.extend((0..ce.topo.el_total).map(NodeId::EventLogger));
    required.push(NodeId::CheckpointServer(0));
    required.retain(|n| *n != me);
    let until = Instant::now() + deadline;
    loop {
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() {
            die("no complete address map from supervisor");
        }
        match gateway.control().recv_timeout(left) {
            Ok(Control::Msg {
                msg: WireMsg::AddressMap(entries),
                ..
            }) => {
                if required.iter().all(|n| entries.iter().any(|(e, _)| e == n)) {
                    return;
                }
            }
            Ok(_) => continue,
            Err(_) => die("gateway stopped before address map"),
        }
    }
}

fn run_rank(rank: Rank, parent: &str, make_app: &dyn Fn(&str) -> Option<Arc<dyn MpiApp>>) -> ! {
    let ce = child_env();
    let app_spec = env(ENV_APP).unwrap_or_else(|| die("missing MVR_PROC_APP"));
    let app = make_app(&app_spec).unwrap_or_else(|| die(&format!("unknown app '{app_spec}'")));

    let fabric = Fabric::new();
    let slots = register_node(&fabric, rank);
    let gateway = open_endpoint(
        NodeId::Computing(rank),
        parent,
        &fabric,
        GatewayRole::Rank(rank),
        &ce,
    );
    await_address_map(
        &gateway,
        NodeId::Computing(rank),
        &ce,
        Duration::from_secs(15),
    );

    // Per-incarnation recorder over the deployment-wide epoch (shifted
    // by any injected skew); streamed to disk so a SIGKILL loses at most
    // the unflushed cadence tail (nothing, at the default cadence of 1),
    // and teed into the bounded telemetry buffer for live shipping.
    let rec_config = RecorderConfig {
        enabled: ce.obs_dir.is_some(),
        stream_flush_every: ce.stream_flush_every,
        clock_drift_ppb: ce.drift_ppb,
        ..Default::default()
    };
    let hub = RecorderHub::with_epoch(rec_config, epoch_from_unix_ns(ce.local_epoch_ns()));
    let mut telemetry: Option<Arc<TelemetrySink>> = None;
    if let Some(dir) = &ce.obs_dir {
        let tel = Arc::new(TelemetrySink::new(TELEMETRY_CAPACITY));
        let path = format!("{dir}/cn{}-i{}.jsonl", rank.0, ce.incarnation);
        let mut sinks: Vec<Arc<dyn RecordSink>> = vec![tel.clone()];
        // Long-horizon runs rotate the durable stream into bounded
        // segments (indexed in a sidecar, merged like any input);
        // with both thresholds 0 this is exactly the single-file path.
        let rotate = RotateConfig {
            max_records: ce.rotate_records,
            max_bytes: ce.rotate_bytes,
        };
        if let Ok(sink) = JsonlStreamSink::with_rotation(
            std::path::Path::new(&path),
            rec_config.stream_flush_every,
            rotate,
        ) {
            sinks.push(Arc::new(sink));
        }
        hub.set_sink(Arc::new(TeeSink(sinks)));
        telemetry = Some(tel);
    }

    let (exit_tx, exit_rx) = mpsc::channel();
    let _threads = start_node(
        slots,
        NodeConfig {
            rank,
            world: ce.topo.world,
            protocol: RuntimeProtocol::V2,
            el_shards: ce.topo.el_total / ce.replicas.max(1),
            el_replicas: ce.replicas,
            channel_memories: 0,
            batch: Default::default(),
            restart: ce.restart,
            recorder: hub.recorder(rank.0),
        },
        app,
        exit_tx,
    );

    // Deterministic live-monitor probe: a delivery whose reception event
    // is never acknowledged, then a payload on the wire — the canonical
    // pessimism-gate violation (§4.1), recorded straight into this
    // rank's stream. The phantom peer and near-max clocks keep the
    // injection from colliding with real protocol state; the parent's
    // cluster-wide monitor must fail the run on the Wire send.
    if ce.inject_violation {
        let r = hub.recorder(rank.0);
        let phantom = ce.topo.world + 7;
        r.record(
            u64::MAX - 1,
            ProtoEvent::Deliver {
                from: phantom,
                sender_clock: u64::MAX - 1,
                receiver_clock: u64::MAX - 1,
                replay: false,
            },
        );
        r.record(
            u64::MAX,
            ProtoEvent::Send {
                to: phantom,
                clock: u64::MAX,
                bytes: 0,
                disposition: SendDisposition::Wire,
            },
        );
    }

    // Serve until the supervisor says we are done: a finished rank keeps
    // its endpoint up (peers may still replay against us), exactly like
    // a finished in-process node keeps its mailbox registered.
    let node_name = format!("cn{}", rank.0);
    let mut last_ship = Instant::now();
    loop {
        if let Ok(exit) = exit_rx.try_recv() {
            match exit.outcome {
                Outcome::Finished(result) => {
                    gateway.send_to(NodeId::Dispatcher, &WireMsg::RankResult { rank, result });
                }
                Outcome::Failed(detail) => {
                    gateway.send_to(NodeId::Dispatcher, &WireMsg::RankFailed { rank, detail });
                    // Explicit teardown, not a grace-period sleep: make
                    // the JSONL stream durable, ship the last staged
                    // telemetry, drain the outbound socket queues, die.
                    hub.flush_sink();
                    if let Some(tel) = &telemetry {
                        ship_telemetry(&gateway, tel, &node_name, ce.incarnation);
                    }
                    gateway.transport().flush(Duration::from_secs(2));
                    std::process::exit(1);
                }
                // Fabric-level kills do not exist in the socket backend;
                // real crashes arrive as SIGKILL, not as an exit report.
                Outcome::Killed => {}
            }
        }
        if let Some(tel) = &telemetry {
            // Ship staged records promptly, and a snapshot-only frame on
            // the cadence otherwise — off the protocol hot path either
            // way (this is the supervision loop, not a daemon thread).
            if tel.pending() > 0 || last_ship.elapsed() >= TELEMETRY_CADENCE {
                ship_telemetry(&gateway, tel, &node_name, ce.incarnation);
                last_ship = Instant::now();
            }
        }
        match gateway.control().recv_timeout(Duration::from_millis(5)) {
            Ok(Control::Msg {
                msg: WireMsg::Shutdown,
                ..
            }) => {
                // `exit` skips destructors: flush the (possibly
                // buffered) stream sink explicitly before leaving.
                hub.flush_sink();
                std::process::exit(0)
            }
            Ok(Control::PeerDown {
                peer: NodeId::Dispatcher,
                ..
            }) => std::process::exit(EXIT_ORPHANED),
            // Peer-rank losses are the supervisor's to adjudicate; the
            // protocol sees them as in-flight loss + eventual Restart1.
            Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => std::process::exit(EXIT_ORPHANED),
        }
    }
}

fn run_el(addr: ElAddr, parent: &str) -> ! {
    let ce = child_env();
    let flat = addr.flat(ce.replicas);
    let fabric = Fabric::new();
    let gateway = open_endpoint(
        NodeId::EventLogger(flat),
        parent,
        &fabric,
        GatewayRole::EventLogger(flat),
        &ce,
    );
    await_address_map(
        &gateway,
        NodeId::EventLogger(flat),
        &ce,
        Duration::from_secs(15),
    );

    let store = Arc::new(Mutex::new(mvr_eventlog::EventLogStore::new()));

    // Revival: catch up from a same-shard sibling before opening for
    // business, then tell the supervisor how much we absorbed (§4.5's
    // replicated-ledger failover, now across real processes).
    if ce.restart && ce.replicas > 1 {
        for k in 0..ce.replicas {
            if k != addr.replica {
                let sib = addr.shard * ce.replicas + k;
                gateway.send_to(
                    NodeId::EventLogger(sib),
                    &WireMsg::ElFetch { shard: addr.shard },
                );
            }
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut caught_up = None;
        while caught_up.is_none() && Instant::now() < deadline {
            match gateway.control().recv_timeout(Duration::from_millis(20)) {
                Ok(Control::Msg {
                    msg: WireMsg::ElSnapshot { store: snap },
                    ..
                }) => caught_up = Some(store.lock().absorb(&snap)),
                Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => std::process::exit(EXIT_ORPHANED),
            }
        }
        gateway.send_to(
            NodeId::Dispatcher,
            &WireMsg::ElRevived {
                shard: addr.shard,
                replica: addr.replica,
                caught_up: caught_up.unwrap_or(0),
            },
        );
    }

    let counter = Arc::new(AtomicU64::new(0));
    let _handle = spawn_el_replica(&fabric, addr, ce.replicas, counter.clone(), store.clone());

    let node_name = format!("el{flat}");
    let mut last_ship = Instant::now();
    loop {
        // Ship the ledger counter on the telemetry cadence so the
        // parent's health page carries live per-shard EL progress.
        if ce.obs_dir.is_some() && last_ship.elapsed() >= TELEMETRY_CADENCE {
            gateway.send_to(
                NodeId::Dispatcher,
                &WireMsg::Telemetry {
                    node: node_name.clone(),
                    incarnation: ce.incarnation,
                    records: Vec::new(),
                    snapshot: TelemetrySnapshot {
                        el_events: counter.load(Ordering::Relaxed),
                        ..TelemetrySnapshot::default()
                    },
                },
            );
            last_ship = Instant::now();
        }
        match gateway.control().recv_timeout(Duration::from_millis(25)) {
            Ok(Control::Msg {
                from,
                msg: WireMsg::ElFetch { .. },
            }) => {
                // A reviving sibling wants our ledger.
                let snap = store.lock().clone();
                gateway.send_to(from, &WireMsg::ElSnapshot { store: snap });
            }
            Ok(Control::Msg {
                msg: WireMsg::Shutdown,
                ..
            }) => std::process::exit(0),
            Ok(Control::PeerDown {
                peer: NodeId::Dispatcher,
                ..
            }) => std::process::exit(EXIT_ORPHANED),
            Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => std::process::exit(EXIT_ORPHANED),
        }
    }
}

fn run_cs(parent: &str) -> ! {
    let ce = child_env();
    let fabric = Fabric::new();
    let gateway = open_endpoint(
        NodeId::CheckpointServer(0),
        parent,
        &fabric,
        GatewayRole::CheckpointServer,
        &ce,
    );
    await_address_map(
        &gateway,
        NodeId::CheckpointServer(0),
        &ce,
        Duration::from_secs(15),
    );

    // A reincarnated checkpoint server starts empty: the paper's §4.3
    // verdict applies ("affected nodes restart from scratch, at worst").
    // Real deployments would back this with a disk directory.
    let store = Arc::new(Mutex::new(mvr_ckpt::CheckpointStore::new()));
    let _handle = spawn_checkpoint_server_on(&fabric, store);

    loop {
        match gateway.control().recv_timeout(Duration::from_millis(25)) {
            Ok(Control::Msg {
                msg: WireMsg::Shutdown,
                ..
            }) => std::process::exit(0),
            Ok(Control::PeerDown {
                peer: NodeId::Dispatcher,
                ..
            }) => std::process::exit(EXIT_ORPHANED),
            Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => std::process::exit(EXIT_ORPHANED),
        }
    }
}
