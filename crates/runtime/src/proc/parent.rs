//! The supervising dispatcher of the multi-process deployment: spawns
//! ranks, event-logger replicas and the checkpoint server as **real OS
//! processes**, watches them through the socket fail-stop detector, and
//! maps detector verdicts onto the same recovery actions the in-process
//! dispatcher takes — respawn with backoff for ranks, immediate revival
//! for service replicas.
//!
//! Failure authority is deliberately centralized here (mirroring the
//! paper's dispatcher, §4.2): children never act on their own peer-down
//! observations — a lost link is indistinguishable from in-flight loss,
//! which the protocol already tolerates — so only the supervisor turns
//! "socket died" into "node died", respawn decisions stay
//! race-free, and a network blip cannot split the deployment.
//!
//! Chaos kills are **real `SIGKILL`s** delivered on the schedule of
//! [`ChaosConfig::plan`] — the same pure-function-of-seed plan the
//! in-process storm replays, so a pinned plan reproduces identically
//! over sockets.

use super::child::{
    transport_config, ENV_APP, ENV_DRIFT_PPB, ENV_EPOCH_NS, ENV_EPOCH_SKEW_NS, ENV_FAIL_AFTER_MS,
    ENV_INCARNATION, ENV_INJECT_VIOLATION, ENV_OBS, ENV_PARENT, ENV_REPLICAS, ENV_RESTART,
    ENV_ROLE, ENV_ROTATE_BYTES, ENV_ROTATE_RECORDS, ENV_SHARDS, ENV_STREAM_FLUSH_EVERY, ENV_WORLD,
};
use super::gateway::{Control, Gateway, GatewayRole, Topology};
use super::sig;
use super::wire::WireMsg;
use crate::chaos::ChaosConfig;
use crate::services::{spawn_checkpoint_scheduler, SchedulerConfig};
use mvr_core::{Metrics, NodeId, Payload, Rank};
use mvr_net::{Fabric, TcpTransport, Transport};
use mvr_obs::{
    merge_dump_files, timing_families, unix_now_ns, window_families, HealthServer,
    InvariantMonitor, JsonlStreamSink, LogHistogram, MergeSummary, PromPage, ProtoEvent,
    ProtocolTimings, Recorder, RecorderConfig, RecorderHub, TelemetrySnapshot, Violation,
    WindowRing, DISPATCHER_RANK,
};
use std::collections::HashMap;
use std::path::Path;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one multi-process run.
#[derive(Clone, Debug)]
pub struct ProcOptions {
    /// Number of computing ranks.
    pub world: u32,
    /// Event-logger shards.
    pub el_shards: u32,
    /// Replicas per shard.
    pub el_replicas: u32,
    /// Checkpoint subsystem (scheduler runs inside the supervisor).
    pub checkpointing: Option<SchedulerConfig>,
    /// Application spec handed to rank children (`"ring 500"`).
    pub app_spec: String,
    /// Wall-clock budget for the whole run.
    pub timeout: Duration,
    /// Timed real-`SIGKILL`s of ranks (`--kill r@ms`).
    pub kills: Vec<(Rank, Duration)>,
    /// Timed real-`SIGKILL`s of EL replicas, by flat index.
    pub el_kills: Vec<(u32, Duration)>,
    /// Timed real-`SIGKILL`s of the checkpoint server.
    pub cs_kills: Vec<Duration>,
    /// Seeded crash storm, replayed as real signals.
    pub chaos: Option<ChaosConfig>,
    /// Base detection-to-respawn delay (doubled per repeat crash).
    pub restart_delay: Duration,
    /// Restart budget per rank.
    pub max_rank_restarts: u32,
    /// Directory for per-process JSONL event streams + merged dump.
    pub obs_dir: Option<PathBuf>,
    /// Bind a live health endpoint here (e.g. `"127.0.0.1:0"`).
    pub health_addr: Option<String>,
    /// Write the health endpoint's bound address (`host:port`) to this
    /// file once listening — how tooling discovers an ephemeral port.
    pub health_addr_file: Option<PathBuf>,
    /// Run the cluster-wide online invariant monitor over the live
    /// telemetry stream. Only effective with `obs_dir` set — children
    /// ship telemetry only when recording is on.
    pub monitor: bool,
    /// Per-rank recorder-epoch shifts in nanoseconds — injected clock
    /// skew for exercising the skew-corrected merge.
    pub epoch_skew: Vec<(Rank, i64)>,
    /// Per-rank injected clock-drift rates in parts-per-billion — the
    /// rank's recorder clock runs fast (positive) or slow (negative)
    /// by this much, exercising the drift-aware piecewise merge
    /// correction the way a real bad oscillator would.
    pub epoch_drift: Vec<(Rank, i64)>,
    /// Rotate children's durable JSONL streams after this many records
    /// per segment (0 = never). Closed segments are indexed in a
    /// `*.segments.json` sidecar and consumed by the merge like any
    /// other input.
    pub rotate_records: u64,
    /// Rotate children's durable JSONL streams once a segment exceeds
    /// this many bytes (0 = never).
    pub rotate_bytes: u64,
    /// Make this rank record a deliberate pessimism-gate violation at
    /// startup (live-monitor end-to-end probe).
    pub inject_violation: Option<Rank>,
    /// Flush cadence of children's durable JSONL streams (1 = one
    /// `write(2)` per record, the SIGKILL-durable default).
    pub stream_flush_every: u32,
    /// Fail-stop detector read-timeout override for every endpoint.
    pub fail_after: Option<Duration>,
    /// Declared first-launch bind addresses from a program file's
    /// `host:port` entries ([`crate::progfile::ProgramFile::bind_map`]).
    pub binds: Vec<(NodeId, String)>,
    /// Binary to re-exec as children (usually `current_exe`).
    pub exe: PathBuf,
}

impl ProcOptions {
    /// A small default deployment running `app_spec` with `world` ranks.
    pub fn new(world: u32, app_spec: impl Into<String>) -> ProcOptions {
        ProcOptions {
            world,
            el_shards: 1,
            el_replicas: 1,
            checkpointing: Some(SchedulerConfig::default()),
            app_spec: app_spec.into(),
            timeout: Duration::from_secs(120),
            kills: Vec::new(),
            el_kills: Vec::new(),
            cs_kills: Vec::new(),
            chaos: None,
            restart_delay: Duration::from_millis(2),
            max_rank_restarts: 40,
            obs_dir: None,
            health_addr: None,
            health_addr_file: None,
            monitor: true,
            epoch_skew: Vec::new(),
            epoch_drift: Vec::new(),
            rotate_records: 0,
            rotate_bytes: 0,
            inject_violation: None,
            stream_flush_every: 1,
            fail_after: None,
            binds: Vec::new(),
            exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("mpirun")),
        }
    }
}

/// What a completed multi-process run reports.
#[derive(Debug)]
pub struct ProcReport {
    /// Application results, rank order.
    pub results: Vec<Payload>,
    /// Rank reincarnations performed.
    pub restarts: u32,
    /// Service (EL replica / CS) reincarnations performed.
    pub service_restarts: u32,
    /// Fail-stop detections `(peer, cause)` in detection order,
    /// teardown-phase disconnects excluded.
    pub detections: Vec<(String, String)>,
    /// Per-rank engine metrics from the final incarnations.
    pub rank_metrics: Vec<(Rank, Metrics)>,
    /// Violations reported by children (normally empty).
    pub violations: Vec<(String, String)>,
    /// Path of the merged flight-recorder dump, when `obs_dir` was set.
    pub merged_dump: Option<PathBuf>,
    /// Full merge summary — record/drop counters, the skew estimate and
    /// applied offsets, first-divergence triage.
    pub merge: Option<MergeSummary>,
    /// Final telemetry snapshot per child node (display name order),
    /// when telemetry was live.
    pub telemetry: Vec<(String, TelemetrySnapshot)>,
}

/// Why a multi-process run failed.
#[derive(Debug)]
pub enum ProcError {
    /// The wall-clock budget expired.
    Timeout,
    /// A rank's application reported an error.
    RankFailed {
        /// The failing rank.
        rank: Rank,
        /// Its error.
        detail: String,
    },
    /// A rank crashed more often than the restart budget allows.
    RestartBudgetExhausted(Rank),
    /// Child launch / endpoint setup failed.
    Launch(String),
    /// The live cluster-wide invariant monitor caught a cross-process
    /// protocol violation; the run was failed at detection time.
    InvariantViolated(Violation),
    /// `SIGINT`/`SIGTERM` hit the supervisor; children were torn down.
    Interrupted,
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Timeout => write!(f, "run timed out"),
            ProcError::RankFailed { rank, detail } => {
                write!(f, "rank {rank} failed: {detail}")
            }
            ProcError::RestartBudgetExhausted(r) => {
                write!(f, "rank {r} exhausted its restart budget")
            }
            ProcError::Launch(e) => write!(f, "launch failed: {e}"),
            ProcError::InvariantViolated(v) => write!(f, "{v}"),
            ProcError::Interrupted => write!(f, "interrupted; children torn down"),
        }
    }
}

impl std::error::Error for ProcError {}

/// One scheduled real-signal kill.
#[derive(Clone, Debug)]
struct PlannedKill {
    at: Duration,
    target: NodeId,
    rekill: bool,
}

/// Supervisor-side state of one child slot.
struct Slot {
    child: Option<Child>,
    pid: u32,
    incarnation: u64,
    addr: Option<String>,
    restarts: u32,
    /// Down verdict for the current incarnation already handled
    /// (detector and reaper can both observe the same death).
    down_handled: bool,
    respawn_at: Option<Instant>,
}

/// Run a full multi-process deployment to completion. See module docs.
pub fn run_proc(opts: ProcOptions) -> Result<ProcReport, ProcError> {
    let mut sup = Supervisor::launch(&opts)?;
    let verdict = sup.supervise(&opts);
    // Graceful teardown in every outcome: broadcast Shutdown, wait with
    // a deadline, escalate SIGTERM → SIGKILL, reap everything.
    sup.teardown();
    let report = sup.take_report(&opts);
    match verdict {
        Ok(()) => report,
        Err(e) => Err(e),
    }
}

struct Supervisor {
    gateway: Gateway,
    local_addr: String,
    fabric: Fabric,
    hub: Arc<RecorderHub>,
    recorder: Recorder,
    slots: HashMap<NodeId, Slot>,
    results: Vec<Option<Payload>>,
    rank_metrics: Vec<(Rank, Metrics)>,
    detections: Vec<(String, String)>,
    violations: Vec<(String, String)>,
    restarts: u32,
    service_restarts: u32,
    epoch_ns: u64,
    health: Option<HealthServer>,
    /// The cluster-wide online invariant monitor, fed every child's
    /// live telemetry records as they arrive.
    monitor: Option<Arc<InvariantMonitor>>,
    /// Latest cumulative telemetry snapshot per child, keyed by display
    /// name; the incarnation guards against a late frame from a
    /// superseded process overwriting its replacement's counters.
    telemetry: HashMap<String, (u64, TelemetrySnapshot)>,
    /// Ring of recent metrics windows over the aggregated child
    /// interval histograms, published on the health page next to the
    /// cumulative families.
    windows: WindowRing,
    shutting_down: bool,
}

impl Supervisor {
    fn launch(opts: &ProcOptions) -> Result<Supervisor, ProcError> {
        sig::install_shutdown_handler();
        let epoch_ns = unix_now_ns();
        let hub = RecorderHub::with_epoch(
            if opts.obs_dir.is_some() {
                RecorderConfig::enabled()
            } else {
                RecorderConfig::default()
            },
            mvr_obs::epoch_from_unix_ns(epoch_ns),
        );
        if let Some(dir) = &opts.obs_dir {
            std::fs::create_dir_all(dir).map_err(|e| ProcError::Launch(format!("obs dir: {e}")))?;
            if let Ok(sink) = JsonlStreamSink::create(&dir.join("disp.jsonl")) {
                hub.set_sink(Arc::new(sink));
            }
        }
        let recorder = hub.recorder(DISPATCHER_RANK);

        let mut cfg = transport_config();
        if let Some(fa) = opts.fail_after {
            cfg.fail_after = fa;
            cfg.heartbeat = (fa / 4).max(Duration::from_millis(5));
        }
        let transport = TcpTransport::bind(NodeId::Dispatcher, "127.0.0.1:0", 0, cfg)
            .map_err(|e| ProcError::Launch(format!("bind: {e}")))?;
        let local_addr = transport
            .local_addr()
            .ok_or_else(|| ProcError::Launch("no local addr".into()))?;
        let transport: Arc<dyn Transport> = Arc::new(transport);

        let fabric = Fabric::new();
        let topo = Topology {
            world: opts.world,
            el_total: opts.el_shards * opts.el_replicas,
        };
        let gateway = Gateway::start(transport, &fabric, GatewayRole::Supervisor, topo);
        if let Some(sched) = &opts.checkpointing {
            spawn_checkpoint_scheduler(&fabric, opts.world, sched.clone());
        }

        let health = match &opts.health_addr {
            Some(addr) => Some(
                HealthServer::bind(addr)
                    .map_err(|e| ProcError::Launch(format!("health endpoint: {e}")))?,
            ),
            None => None,
        };
        if let Some(h) = &health {
            println!("mpirun: health endpoint at http://{}/", h.local_addr());
            if let Some(path) = &opts.health_addr_file {
                if let Err(e) = std::fs::write(path, h.local_addr().to_string()) {
                    eprintln!("mpirun: health addr file {}: {e}", path.display());
                }
            }
        }

        let mut sup = Supervisor {
            gateway,
            local_addr,
            fabric,
            hub,
            recorder,
            slots: HashMap::new(),
            results: (0..opts.world).map(|_| None).collect(),
            rank_metrics: Vec::new(),
            detections: Vec::new(),
            violations: Vec::new(),
            restarts: 0,
            service_restarts: 0,
            epoch_ns,
            health,
            monitor: opts.monitor.then(InvariantMonitor::new),
            telemetry: HashMap::new(),
            windows: WindowRing::with_defaults(0),
            shutting_down: false,
        };

        let mut nodes: Vec<NodeId> = (0..opts.world)
            .map(|r| NodeId::Computing(Rank(r)))
            .collect();
        for f in 0..topo.el_total {
            nodes.push(NodeId::EventLogger(f));
        }
        nodes.push(NodeId::CheckpointServer(0));
        for node in nodes {
            sup.spawn_child(opts, node, 0, false)?;
        }
        Ok(sup)
    }

    fn role_spec(node: NodeId, opts: &ProcOptions) -> String {
        match node {
            NodeId::Computing(r) => format!("cn:{}", r.0),
            NodeId::EventLogger(f) => {
                format!("el:{}:{}", f / opts.el_replicas, f % opts.el_replicas)
            }
            NodeId::CheckpointServer(_) => "cs".into(),
            other => panic!("not a child role: {other}"),
        }
    }

    fn spawn_child(
        &mut self,
        opts: &ProcOptions,
        node: NodeId,
        incarnation: u64,
        restart: bool,
    ) -> Result<(), ProcError> {
        let mut cmd = Command::new(&opts.exe);
        cmd.env(ENV_ROLE, Self::role_spec(node, opts))
            .env(ENV_PARENT, &self.local_addr)
            .env(ENV_EPOCH_NS, self.epoch_ns.to_string())
            .env(ENV_INCARNATION, incarnation.to_string())
            .env(ENV_WORLD, opts.world.to_string())
            .env(ENV_SHARDS, opts.el_shards.to_string())
            .env(ENV_REPLICAS, opts.el_replicas.to_string())
            .env(ENV_APP, &opts.app_spec)
            .stdin(Stdio::null());
        if restart {
            cmd.env(ENV_RESTART, "1");
        }
        if incarnation == 0 {
            if let Some((_, addr)) = opts.binds.iter().find(|(n, _)| *n == node) {
                cmd.env(super::child::ENV_BIND, addr);
            }
        }
        if let Some(dir) = &opts.obs_dir {
            cmd.env(ENV_OBS, dir);
        }
        if opts.stream_flush_every > 1 {
            cmd.env(ENV_STREAM_FLUSH_EVERY, opts.stream_flush_every.to_string());
        }
        if opts.rotate_records > 0 {
            cmd.env(ENV_ROTATE_RECORDS, opts.rotate_records.to_string());
        }
        if opts.rotate_bytes > 0 {
            cmd.env(ENV_ROTATE_BYTES, opts.rotate_bytes.to_string());
        }
        if let NodeId::Computing(r) = node {
            if let Some((_, skew)) = opts.epoch_skew.iter().find(|(sr, _)| *sr == r) {
                cmd.env(ENV_EPOCH_SKEW_NS, skew.to_string());
            }
            if let Some((_, ppb)) = opts.epoch_drift.iter().find(|(dr, _)| *dr == r) {
                cmd.env(ENV_DRIFT_PPB, ppb.to_string());
            }
            if opts.inject_violation == Some(r) {
                cmd.env(ENV_INJECT_VIOLATION, "1");
            }
        }
        if let Some(fa) = opts.fail_after {
            cmd.env(ENV_FAIL_AFTER_MS, fa.as_millis().to_string());
        }
        // Enforce the fail-stop verdict before replacing the slot: if
        // the detector declared the old incarnation dead while the OS
        // process still lingers (wedged rather than exited), two
        // incarnations of the same rank must never run concurrently.
        if let Some(mut old) = self.slots.get_mut(&node).and_then(|s| s.child.take()) {
            sig::send_signal(old.id(), sig::SIGKILL);
            let _ = old.wait();
        }
        let child = cmd
            .spawn()
            .map_err(|e| ProcError::Launch(format!("spawn {node}: {e}")))?;
        let pid = child.id();
        println!("mpirun: launched {node} pid={pid} incarnation={incarnation}");
        self.slots.insert(
            node,
            Slot {
                child: Some(child),
                pid,
                incarnation,
                addr: None,
                restarts: self.slots.get(&node).map(|s| s.restarts).unwrap_or(0),
                down_handled: false,
                respawn_at: None,
            },
        );
        Ok(())
    }

    /// Current address map: every known child address plus our own.
    fn address_map(&self) -> WireMsg {
        let mut entries: Vec<(NodeId, String)> =
            vec![(NodeId::Dispatcher, self.local_addr.clone())];
        for (node, slot) in &self.slots {
            if let Some(addr) = &slot.addr {
                entries.push((*node, addr.clone()));
            }
        }
        WireMsg::AddressMap(entries)
    }

    fn broadcast_address_map(&self) {
        let map = self.address_map();
        for (node, slot) in &self.slots {
            if slot.addr.is_some() {
                self.gateway.send_to(*node, &map);
            }
        }
    }

    /// Flatten the option kills and the chaos plan into one absolute
    /// schedule — a pure function of the options, so a pinned plan
    /// replays the identical signal sequence.
    fn kill_schedule(opts: &ProcOptions) -> Vec<PlannedKill> {
        let mut kills: Vec<PlannedKill> = Vec::new();
        for (r, at) in &opts.kills {
            kills.push(PlannedKill {
                at: *at,
                target: NodeId::Computing(*r),
                rekill: false,
            });
        }
        for (f, at) in &opts.el_kills {
            kills.push(PlannedKill {
                at: *at,
                target: NodeId::EventLogger(*f),
                rekill: false,
            });
        }
        for at in &opts.cs_kills {
            kills.push(PlannedKill {
                at: *at,
                target: NodeId::CheckpointServer(0),
                rekill: false,
            });
        }
        if let Some(chaos) = &opts.chaos {
            let mut t = Duration::ZERO;
            for ev in chaos.plan(opts.world) {
                t += ev.after;
                for v in &ev.victims {
                    kills.push(PlannedKill {
                        at: t,
                        target: NodeId::Computing(*v),
                        rekill: ev.rekill,
                    });
                }
                if ev.kill_checkpoint_server {
                    kills.push(PlannedKill {
                        at: t,
                        target: NodeId::CheckpointServer(0),
                        rekill: false,
                    });
                }
                if let Some(f) = ev.kill_el_replica {
                    kills.push(PlannedKill {
                        at: t,
                        target: NodeId::EventLogger(f),
                        rekill: false,
                    });
                }
            }
        }
        kills.sort_by_key(|k| k.at);
        kills
    }

    fn supervise(&mut self, opts: &ProcOptions) -> Result<(), ProcError> {
        let start = Instant::now();
        let mut kills = Self::kill_schedule(opts);
        let mut next_health = Instant::now();

        loop {
            let now = Instant::now();
            if now.duration_since(start) > opts.timeout {
                return Err(ProcError::Timeout);
            }
            if sig::shutdown_requested() {
                println!("mpirun: interrupt — tearing children down");
                return Err(ProcError::Interrupted);
            }

            // Deliver due planned kills — real SIGKILLs.
            while kills
                .first()
                .is_some_and(|k| now.duration_since(start) >= k.at)
            {
                let k = kills.remove(0);
                self.deliver_kill(&k);
            }

            // Reap exited children; unexpected deaths feed the same
            // down-handling as the socket detector (whichever is first).
            self.reap_children(opts)?;

            // Due respawns.
            let due: Vec<NodeId> = self
                .slots
                .iter()
                .filter(|(_, s)| s.respawn_at.is_some_and(|t| t <= now))
                .map(|(n, _)| *n)
                .collect();
            for node in due {
                let inc = self.slots[&node].incarnation + 1;
                if let Some(slot) = self.slots.get_mut(&node) {
                    slot.respawn_at = None;
                }
                self.spawn_child(opts, node, inc, true)?;
                match node {
                    NodeId::Computing(_) => self.restarts += 1,
                    _ => self.service_restarts += 1,
                }
            }

            if self.health.is_some() && now >= next_health {
                self.publish_health(opts, start);
                next_health = now + Duration::from_millis(100);
            }

            // Drain the control plane.
            match self
                .gateway
                .control()
                .recv_timeout(Duration::from_millis(2))
            {
                Ok(ctl) => self.handle_control(opts, ctl)?,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ProcError::Launch("gateway pump died".into()))
                }
            }

            if kills.is_empty() && self.results.iter().all(|r| r.is_some()) {
                return Ok(());
            }
        }
    }

    fn deliver_kill(&mut self, k: &PlannedKill) {
        let Some(slot) = self.slots.get(&k.target) else {
            return;
        };
        if slot.child.is_none() {
            return; // currently down; its respawn is already scheduled
        }
        println!("mpirun: SIGKILL {} pid={}", k.target, slot.pid);
        match k.target {
            NodeId::Computing(r) => self.recorder.record(
                0,
                ProtoEvent::ChaosKill {
                    victim: r.0,
                    rekill: k.rekill,
                },
            ),
            NodeId::EventLogger(f) => self.recorder.record(
                0,
                ProtoEvent::ServiceKill {
                    service: format!("el{f}"),
                },
            ),
            _ => self.recorder.record(
                0,
                ProtoEvent::ServiceKill {
                    service: "cs".into(),
                },
            ),
        }
        sig::send_signal(slot.pid, sig::SIGKILL);
    }

    fn reap_children(&mut self, opts: &ProcOptions) -> Result<(), ProcError> {
        let nodes: Vec<NodeId> = self.slots.keys().copied().collect();
        for node in nodes {
            let slot = self.slots.get_mut(&node).expect("slot exists");
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) => {
                    let kind = exit_kind(&status);
                    slot.child = None;
                    if !self.shutting_down && !slot.down_handled {
                        println!("mpirun: {node} exited ({kind})");
                        self.handle_down(opts, node, kind)?;
                    }
                }
                Ok(None) => {}
                Err(_) => {}
            }
        }
        Ok(())
    }

    /// One death, one verdict: called by detector PeerDown or reaper,
    /// whichever fires first for this incarnation.
    fn handle_down(
        &mut self,
        opts: &ProcOptions,
        node: NodeId,
        cause: String,
    ) -> Result<(), ProcError> {
        let Some(slot) = self.slots.get_mut(&node) else {
            return Ok(());
        };
        if slot.down_handled {
            return Ok(());
        }
        slot.down_handled = true;
        slot.addr = None;
        self.detections.push((format!("{node}"), cause));
        match node {
            NodeId::Computing(r) => {
                // A rank that already delivered its result does not come
                // back; the survivors are only waiting for teardown.
                if self.results[r.0 as usize].is_some() {
                    return Ok(());
                }
                let slot = self.slots.get_mut(&node).expect("slot exists");
                let attempt = slot.restarts as u64 + 1;
                if slot.restarts >= opts.max_rank_restarts {
                    return Err(ProcError::RestartBudgetExhausted(r));
                }
                slot.restarts += 1;
                // The dispatcher's backoff idiom: doubled per repeat
                // crash of the same rank, capped at 64×.
                let factor = 1u32 << (slot.restarts - 1).min(6);
                slot.respawn_at = Some(Instant::now() + opts.restart_delay * factor);
                self.recorder
                    .record(0, ProtoEvent::RespawnScheduled { rank: r.0, attempt });
            }
            _ => {
                slot.restarts += 1;
                slot.respawn_at = Some(Instant::now() + opts.restart_delay);
            }
        }
        Ok(())
    }

    fn handle_control(&mut self, opts: &ProcOptions, ctl: Control) -> Result<(), ProcError> {
        match ctl {
            Control::Msg { from: _, msg } => match msg {
                WireMsg::Hello {
                    node,
                    addr,
                    incarnation,
                } => {
                    self.gateway.transport().set_route(node, addr.clone());
                    if let Some(slot) = self.slots.get_mut(&node) {
                        // A hello from a superseded incarnation (e.g. a
                        // zombie that raced its own SIGKILL) is ignored.
                        if incarnation == slot.incarnation {
                            slot.addr = Some(addr);
                            self.broadcast_address_map();
                        }
                    }
                }
                WireMsg::RankResult { rank, result } => {
                    if let Some(cell) = self.results.get_mut(rank.0 as usize) {
                        *cell = Some(result);
                    }
                }
                WireMsg::RankFailed { rank, detail } => {
                    return Err(ProcError::RankFailed { rank, detail });
                }
                WireMsg::Finalized {
                    rank,
                    metrics,
                    timings: _,
                } => {
                    self.rank_metrics.retain(|(r, _)| *r != rank);
                    self.rank_metrics.push((rank, metrics));
                }
                WireMsg::ElRevived {
                    shard,
                    replica,
                    caught_up,
                } => {
                    self.recorder.record(
                        0,
                        ProtoEvent::ElReplicaRevive {
                            shard,
                            replica,
                            caught_up,
                        },
                    );
                }
                WireMsg::Violation { node, detail } => {
                    self.recorder.record(
                        0,
                        ProtoEvent::Divergence {
                            detail: detail.clone(),
                        },
                    );
                    self.violations.push((node, detail));
                }
                WireMsg::Telemetry {
                    node,
                    incarnation,
                    records,
                    snapshot,
                } => {
                    // Merged live stream → cluster-wide monitor. Frames
                    // are FIFO per child and the monitor's state is
                    // per-rank, so arrival order across children is
                    // irrelevant — the same argument that lets the
                    // in-process monitor run inline.
                    if let Some(m) = self.monitor.clone() {
                        m.observe_all(&records);
                        if let Some(v) = m.violation() {
                            return Err(self.fail_violation(opts, node, v));
                        }
                    }
                    let entry = self
                        .telemetry
                        .entry(node)
                        .or_insert_with(|| (incarnation, TelemetrySnapshot::default()));
                    if incarnation >= entry.0 {
                        *entry = (incarnation, snapshot);
                    }
                }
                // Data-plane messages are routed inside the gateway;
                // anything else here is stray control noise.
                _ => {}
            },
            Control::PeerUp { peer, incarnation } => {
                self.recorder.record(
                    0,
                    ProtoEvent::TransportUp {
                        peer: format!("{peer}"),
                        incarnation,
                    },
                );
            }
            Control::PeerDown {
                peer,
                incarnation,
                cause,
            } => {
                self.recorder.record(
                    0,
                    ProtoEvent::TransportDown {
                        peer: format!("{peer}"),
                        cause: format!("{cause}"),
                    },
                );
                // A verdict naming an incarnation older than the one we
                // launched is about a death already handled — e.g. the
                // synthetic down the transport emits when a respawned
                // child's hello supersedes a lingering old link. Acting
                // on it would re-kill the healthy replacement and turn
                // one failure into a respawn storm.
                let stale = self
                    .slots
                    .get(&peer)
                    .is_some_and(|s| incarnation < s.incarnation);
                if !self.shutting_down && !stale {
                    self.handle_down(opts, peer, format!("{cause}"))?;
                }
            }
        }
        Ok(())
    }

    /// The per-child JSONL streams eligible for merging (the merged and
    /// crash outputs themselves excluded).
    fn dump_inputs(dir: &Path) -> Vec<PathBuf> {
        let mut inputs: Vec<PathBuf> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.extension().is_some_and(|x| x == "jsonl")
                            && p.file_name()
                                .is_some_and(|n| n != "merged.jsonl" && n != "crash.jsonl")
                    })
                    .collect()
            })
            .unwrap_or_default();
        inputs.sort();
        inputs
    }

    /// Fail the run on a live invariant violation, with the same triage
    /// a post-mortem gets: a `Divergence` record, a merged crash dump of
    /// everything the children have streamed so far, and the triage
    /// note on stderr.
    fn fail_violation(&mut self, opts: &ProcOptions, node: String, v: Violation) -> ProcError {
        self.recorder.record(
            0,
            ProtoEvent::Divergence {
                detail: format!("live monitor: {v}"),
            },
        );
        self.violations.push((node, v.to_string()));
        if let Some(dir) = &opts.obs_dir {
            self.hub.flush_sink();
            match merge_dump_files(&Self::dump_inputs(dir), &dir.join("crash.jsonl")) {
                Ok(summary) => eprintln!("{}", summary.summary()),
                Err(e) => eprintln!("mpirun: crash dump merge failed: {e}"),
            }
        }
        ProcError::InvariantViolated(v)
    }

    fn publish_health(&mut self, opts: &ProcOptions, start: Instant) {
        if self.health.is_none() {
            return;
        }
        let mut page = PromPage::new(&format!(
            "mvr multi-process deployment, up {:?}",
            start.elapsed()
        ));
        page.sample(
            "mvr_up",
            "gauge",
            "1 while the deployment is running, 0 once it has finished.",
            "",
            1,
        );
        page.sample(
            "mvr_proc_results",
            "gauge",
            "Computing ranks that have returned their result.",
            "",
            self.results.iter().filter(|r| r.is_some()).count(),
        );
        page.sample(
            "mvr_proc_restarts",
            "counter",
            "Computing-rank child restarts performed since boot.",
            "",
            self.restarts,
        );
        page.sample(
            "mvr_proc_service_restarts",
            "counter",
            "Service-node (EL/CS) child restarts performed since boot.",
            "",
            self.service_restarts,
        );
        page.sample(
            "mvr_proc_detections",
            "counter",
            "Child-failure detections recorded since boot.",
            "",
            self.detections.len(),
        );
        let mut nodes: Vec<&NodeId> = self.slots.keys().collect();
        nodes.sort();
        for node in &nodes {
            let s = &self.slots[*node];
            page.sample(
                "mvr_proc_child",
                "gauge",
                "1 while the node's child process is spawned and connected.",
                &format!("node=\"{node}\",incarnation=\"{}\"", s.incarnation),
                if s.child.is_some() && s.addr.is_some() {
                    1
                } else {
                    0
                },
            );
        }
        // Dispatcher-parity per-rank series (same names the in-process
        // health page exports, so dashboards work on either backend).
        for node in &nodes {
            if let NodeId::Computing(r) = node {
                let s = &self.slots[*node];
                let l = format!("rank=\"{}\"", r.0);
                page.sample(
                    "mvr_rank_alive",
                    "gauge",
                    "1 while the rank's current incarnation is live.",
                    &l,
                    if s.child.is_some() && s.addr.is_some() {
                        1
                    } else {
                        0
                    },
                );
                page.sample(
                    "mvr_rank_incarnations",
                    "counter",
                    "Incarnations launched for the rank.",
                    &l,
                    s.incarnation,
                );
            }
        }
        match &self.monitor {
            Some(m) => {
                page.sample(
                    "mvr_monitor_enabled",
                    "gauge",
                    "1 when the online invariant monitor is attached.",
                    "",
                    1,
                );
                page.sample(
                    "mvr_monitor_records_total",
                    "counter",
                    "Flight records the invariant monitor has consumed.",
                    "",
                    m.records_seen(),
                );
                page.sample(
                    "mvr_monitor_violations",
                    "gauge",
                    "1 once the monitor has caught an invariant violation.",
                    "",
                    if m.violation().is_some() { 1 } else { 0 },
                );
            }
            None => page.sample(
                "mvr_monitor_enabled",
                "gauge",
                "1 when the online invariant monitor is attached.",
                "",
                0,
            ),
        }
        // Aggregated child telemetry: per-node liveness of the live
        // stream (record/drop counters), per-shard EL ledger progress,
        // and the cluster-wide merged protocol-interval histograms —
        // cumulative plus the ring of recent windows.
        let mut tel: Vec<(&String, &TelemetrySnapshot)> =
            self.telemetry.iter().map(|(n, (_, s))| (n, s)).collect();
        tel.sort_by_key(|(n, _)| n.as_str());
        let mut timings = ProtocolTimings::new();
        let mut quorum_wait = LogHistogram::new();
        let mut shard_events: HashMap<u32, u64> = HashMap::new();
        for (node, snap) in &tel {
            let l = format!("node=\"{node}\"");
            page.sample(
                "mvr_telemetry_records_total",
                "counter",
                "Flight records the child offered to its telemetry sink.",
                &l,
                snap.records_total,
            );
            page.sample(
                "mvr_telemetry_dropped_total",
                "counter",
                "Records the child's bounded telemetry buffer dropped (live stream has holes).",
                &l,
                snap.dropped_total,
            );
            if let Some(flat) = node.strip_prefix("el").and_then(|v| v.parse::<u32>().ok()) {
                // A shard's unique-event count is the max across its
                // replicas — each counter is monotone over the same
                // dedup domain (the in-process page's rule).
                let shard = flat / opts.el_replicas.max(1);
                let e = shard_events.entry(shard).or_insert(0);
                *e = (*e).max(snap.el_events);
            } else {
                timings.merge(&snap.timings);
                quorum_wait.merge(&snap.quorum_wait);
            }
        }
        let mut shards: Vec<(u32, u64)> = shard_events.into_iter().collect();
        shards.sort_unstable();
        for (shard, events) in shards {
            page.sample(
                "mvr_el_shard_unique_events",
                "counter",
                "Unique events a read quorum of the shard would reconstruct (max across replicas).",
                &format!("shard=\"{shard}\""),
                events,
            );
        }
        self.windows.advance(self.recorder.now_ns(), &timings);
        timing_families(
            &mut page,
            &[
                ("gate_wait", &timings.gate_wait),
                ("el_ack_rtt", &timings.el_ack_rtt),
                ("ckpt_store", &timings.ckpt_store),
                ("replay", &timings.replay),
                ("quorum_wait", &quorum_wait),
            ],
        );
        let closed: Vec<_> = self.windows.closed().collect();
        let current = self.windows.current(self.recorder.now_ns(), &timings);
        window_families(&mut page, &closed, &current);
        if let Some(h) = &self.health {
            h.publish(page.finish());
        }
    }

    /// Graceful teardown: `Shutdown` broadcast → bounded wait → SIGTERM
    /// → bounded wait → SIGKILL → reap. No orphans, whatever happened.
    fn teardown(&mut self) {
        self.shutting_down = true;
        for (node, slot) in &self.slots {
            if slot.child.is_some() && slot.addr.is_some() {
                self.gateway.send_to(*node, &WireMsg::Shutdown);
            }
        }
        let mut phase = 0; // 0 = polite, 1 = SIGTERM sent, 2 = SIGKILL sent
        let mut deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let mut alive = 0;
            for slot in self.slots.values_mut() {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        _ => alive += 1,
                    }
                }
            }
            if alive == 0 {
                break;
            }
            if Instant::now() >= deadline {
                phase += 1;
                let sig_no = if phase == 1 {
                    sig::SIGTERM
                } else {
                    sig::SIGKILL
                };
                for slot in self.slots.values() {
                    if slot.child.is_some() {
                        sig::send_signal(slot.pid, sig_no);
                    }
                }
                if phase >= 2 {
                    // SIGKILL cannot be ignored: block on the reaps.
                    for slot in self.slots.values_mut() {
                        if let Some(mut child) = slot.child.take() {
                            let _ = child.wait();
                        }
                    }
                    break;
                }
                deadline = Instant::now() + Duration::from_secs(1);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.gateway.stop();
        if let Some(h) = self.health.take() {
            h.stop();
        }
        // Keep the supervisor's fabric alive until here so the scheduler
        // thread can drain; it dies with the process otherwise.
        let _ = &self.fabric;
    }

    fn take_report(&mut self, opts: &ProcOptions) -> Result<ProcReport, ProcError> {
        let (merged_dump, merge) = match &opts.obs_dir {
            Some(dir) => {
                let out = dir.join("merged.jsonl");
                match merge_dump_files(&Self::dump_inputs(dir), &out) {
                    Ok(summary) => (Some(out), Some(summary)),
                    Err(e) => {
                        eprintln!("mpirun: dump merge failed: {e}");
                        (None, None)
                    }
                }
            }
            None => (None, None),
        };
        let mut telemetry: Vec<(String, TelemetrySnapshot)> = std::mem::take(&mut self.telemetry)
            .into_iter()
            .map(|(n, (_, s))| (n, s))
            .collect();
        telemetry.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = &self.hub;
        let mut results = Vec::with_capacity(self.results.len());
        for (r, cell) in std::mem::take(&mut self.results).into_iter().enumerate() {
            match cell {
                Some(p) => results.push(p),
                None => return Err(ProcError::Launch(format!("rank {r} produced no result"))),
            }
        }
        let mut rank_metrics = std::mem::take(&mut self.rank_metrics);
        rank_metrics.sort_by_key(|(r, _)| r.0);
        Ok(ProcReport {
            results,
            restarts: self.restarts,
            service_restarts: self.service_restarts,
            detections: std::mem::take(&mut self.detections),
            rank_metrics,
            violations: std::mem::take(&mut self.violations),
            merged_dump,
            merge,
            telemetry,
        })
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Orphan safety: whatever path unwound us, no child survives.
        for slot in self.slots.values_mut() {
            if let Some(mut child) = slot.child.take() {
                sig::send_signal(slot.pid, sig::SIGKILL);
                let _ = child.wait();
            }
        }
    }
}

/// Classify how a child exited (clean / error code / signal).
fn exit_kind(status: &std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig_no) = status.signal() {
            return match sig_no {
                sig::SIGKILL => "killed (SIGKILL)".into(),
                sig::SIGTERM => "terminated (SIGTERM)".into(),
                other => format!("signal {other}"),
            };
        }
    }
    match status.code() {
        Some(0) => "clean exit".into(),
        Some(code) => format!("exit code {code}"),
        None => "unknown exit".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_schedule_is_plan_pure() {
        let mut opts = ProcOptions::new(4, "ring 10");
        opts.kills = vec![(Rank(1), Duration::from_millis(10))];
        opts.chaos = Some(ChaosConfig {
            seed: 7,
            kills: 5,
            el_kill_pct: 50,
            el_total: 2,
            cs_kill_pct: 30,
            ..Default::default()
        });
        let a = Supervisor::kill_schedule(&opts);
        let b = Supervisor::kill_schedule(&opts);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.target, y.target);
            assert_eq!(x.rekill, y.rekill);
        }
        // Sorted by time.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn exit_kind_classifies_codes() {
        let st = std::process::Command::new("true").status().unwrap();
        assert_eq!(exit_kind(&st), "clean exit");
        let st = std::process::Command::new("false").status().unwrap();
        assert_eq!(exit_kind(&st), "exit code 1");
    }
}
