//! The cross-process wire protocol: every envelope that crosses a
//! process boundary in the socket deployment, flattened into one serde
//! enum and carried as a bincode-encoded [`mvr_net`] frame payload.
//!
//! Inside one OS process the runtime still runs the unchanged in-process
//! fabric; [`super::gateway`] turns remote mailbox destinations into
//! `WireMsg`s and inbound frames back into local mailbox sends. The enum
//! therefore mirrors `DaemonMsg`/`ElPacket`/`CkptPacket`/`SchedMsg`
//! variant-for-variant, plus the small control plane the supervising
//! dispatcher speaks with its children (hello/address-map/shutdown and
//! result/failure reports).

use mvr_core::{
    CkptReply, CkptRequest, ElAddr, ElReply, ElRequest, Metrics, NodeId, Payload, PeerMsg, Rank,
    SchedMsg,
};
use mvr_eventlog::EventLogStore;
use mvr_obs::{FlightRecord, ProtocolTimings, TelemetrySnapshot};
use serde::{Deserialize, Serialize};

/// One message between two OS processes of a socket deployment.
///
/// Control-plane variants (`Hello` … `Violation`) flow between the
/// supervising dispatcher and its children; data-plane variants wrap the
/// unchanged protocol envelopes of the in-process runtime.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireMsg {
    /// First message of every child, and re-sent on every reincarnation:
    /// "this endpoint now serves `node` at `addr`". The fresh ephemeral
    /// `addr` per incarnation is what sidesteps `TIME_WAIT` rebinding.
    Hello {
        /// The node this process hosts.
        node: NodeId,
        /// Its listening address (`host:port`).
        addr: String,
        /// Supervisor-assigned incarnation (0 on first launch).
        incarnation: u64,
    },
    /// Full routing table, broadcast by the supervisor after every
    /// `Hello` so reincarnated peers are re-routable by everyone.
    AddressMap(Vec<(NodeId, String)>),
    /// Orderly-teardown request from the supervisor.
    Shutdown,

    /// Daemon-to-daemon protocol message (`DaemonMsg::Peer`).
    Peer {
        /// Sending rank.
        from: Rank,
        /// The protocol message.
        msg: PeerMsg,
    },
    /// Daemon-to-event-logger request (`ElPacket`).
    ElReq {
        /// Requesting rank.
        from: Rank,
        /// The request.
        req: ElRequest,
    },
    /// Event-logger-to-daemon reply (`DaemonMsg::El`).
    ElRep {
        /// The answering replica.
        from: ElAddr,
        /// The reply.
        reply: ElReply,
    },
    /// Daemon-to-checkpoint-server request (`CkptPacket`).
    CkptReq {
        /// Requesting rank.
        from: Rank,
        /// The request.
        req: CkptRequest,
    },
    /// Checkpoint-server-to-daemon reply (`DaemonMsg::Ckpt`).
    CkptRep {
        /// The reply.
        reply: CkptReply,
    },
    /// Scheduler-to-daemon order/status-request (`DaemonMsg::Sched`).
    SchedToDaemon {
        /// The message.
        msg: SchedMsg,
    },
    /// Daemon-to-scheduler status/completion (`SchedMsg` at the
    /// scheduler mailbox).
    SchedToScheduler {
        /// The message.
        msg: SchedMsg,
    },

    /// A rank's end-of-run metrics report (`DispatcherMsg::Finalized`).
    Finalized {
        /// Reporting rank.
        rank: Rank,
        /// Engine metrics.
        metrics: Metrics,
        /// Protocol-interval histograms.
        timings: ProtocolTimings,
    },
    /// A rank's application result.
    RankResult {
        /// Finishing rank.
        rank: Rank,
        /// The application's return payload.
        result: Payload,
    },
    /// A rank's application error (protocol failure, not a crash — the
    /// supervisor distinguishes crashes by the fail-stop detector).
    RankFailed {
        /// Failing rank.
        rank: Rank,
        /// Error detail.
        detail: String,
    },

    /// Reviving event-logger replica asking a same-shard sibling for its
    /// ledger.
    ElFetch {
        /// The shard being revived.
        shard: u32,
    },
    /// A sibling's ledger snapshot, absorbed before the revived replica
    /// opens for business.
    ElSnapshot {
        /// The full store.
        store: EventLogStore,
    },
    /// Revival report: the replica is caught up and serving.
    ElRevived {
        /// Shard of the revived replica.
        shard: u32,
        /// Replica slot within the shard.
        replica: u32,
        /// Events absorbed from the sibling snapshot.
        caught_up: u64,
    },

    /// Invariant-monitor violation detected inside a child.
    Violation {
        /// Node (display form) the violation was observed on.
        node: String,
        /// Violation detail.
        detail: String,
    },

    /// Live telemetry batch from a child: staged flight records plus a
    /// cumulative health snapshot. Shipped off the protocol hot path on
    /// the child's supervision loop; the parent feeds the records into
    /// its cluster-wide invariant monitor and folds the snapshot into
    /// the aggregated health page.
    Telemetry {
        /// Node (display form) the batch came from.
        node: String,
        /// Incarnation of the shipping process.
        incarnation: u64,
        /// Flight records drained from the telemetry buffer since the
        /// last frame (bounded batch; empty for snapshot-only frames).
        records: Vec<FlightRecord>,
        /// Cumulative counters and histograms at ship time.
        snapshot: TelemetrySnapshot,
    },
}

impl WireMsg {
    /// Encode for the frame layer.
    pub fn encode(&self) -> Vec<u8> {
        bincode::serialize(self).expect("WireMsg serializes")
    }

    /// Decode a frame payload. Malformed input is an error, never a
    /// panic — the transport treats it as a corrupt stream.
    pub fn decode(bytes: &[u8]) -> Result<WireMsg, String> {
        bincode::deserialize(bytes).map_err(|e| format!("bad wire message: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvr_core::{EventBatch, ReceptionEvent};

    fn roundtrip(msg: &WireMsg) -> WireMsg {
        WireMsg::decode(&msg.encode()).expect("roundtrip")
    }

    #[test]
    fn control_plane_roundtrips() {
        match roundtrip(&WireMsg::Hello {
            node: NodeId::Computing(Rank(3)),
            addr: "127.0.0.1:4711".into(),
            incarnation: 2,
        }) {
            WireMsg::Hello {
                node,
                addr,
                incarnation,
            } => {
                assert_eq!(node, NodeId::Computing(Rank(3)));
                assert_eq!(addr, "127.0.0.1:4711");
                assert_eq!(incarnation, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&WireMsg::AddressMap(vec![
            (NodeId::Dispatcher, "127.0.0.1:1".into()),
            (NodeId::EventLogger(5), "127.0.0.1:2".into()),
        ])) {
            WireMsg::AddressMap(m) => {
                assert_eq!(m.len(), 2);
                assert_eq!(m[1].0, NodeId::EventLogger(5));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(roundtrip(&WireMsg::Shutdown), WireMsg::Shutdown));
    }

    #[test]
    fn data_plane_roundtrips() {
        let batch = EventBatch {
            owner: Rank(1),
            events: vec![ReceptionEvent {
                sender: Rank(0),
                sender_clock: 7,
                receiver_clock: 9,
                probes: 0,
            }],
        };
        match roundtrip(&WireMsg::ElReq {
            from: Rank(1),
            req: ElRequest::Log(batch.clone()),
        }) {
            WireMsg::ElReq {
                from,
                req: ElRequest::Log(b),
            } => {
                assert_eq!(from, Rank(1));
                assert_eq!(b.events[0].receiver_clock, 9);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&WireMsg::ElRep {
            from: ElAddr {
                shard: 1,
                replica: 2,
            },
            reply: ElReply::Ack { up_to: 9 },
        }) {
            WireMsg::ElRep { from, .. } => assert_eq!(from.replica, 2),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn result_and_revival_roundtrip() {
        match roundtrip(&WireMsg::RankResult {
            rank: Rank(2),
            result: Payload::from_vec(vec![1, 2, 3]),
        }) {
            WireMsg::RankResult { rank, result } => {
                assert_eq!(rank, Rank(2));
                assert_eq!(result.as_slice(), &[1, 2, 3]);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let mut store = EventLogStore::new();
        store.log(EventBatch {
            owner: Rank(0),
            events: vec![ReceptionEvent {
                sender: Rank(1),
                sender_clock: 1,
                receiver_clock: 1,
                probes: 0,
            }],
        });
        match roundtrip(&WireMsg::ElSnapshot { store }) {
            WireMsg::ElSnapshot { store } => assert_eq!(store.total_held(), 1),
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&WireMsg::ElRevived {
            shard: 1,
            replica: 0,
            caught_up: 42,
        }) {
            WireMsg::ElRevived { caught_up, .. } => assert_eq!(caught_up, 42),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn telemetry_roundtrips() {
        use mvr_obs::ProtoEvent;
        let mut snapshot = TelemetrySnapshot {
            records_total: 12,
            dropped_total: 3,
            ..Default::default()
        };
        snapshot.timings.gate_wait.record(4_000);
        snapshot.quorum_wait.record(150);
        let msg = WireMsg::Telemetry {
            node: "cn2".into(),
            incarnation: 1,
            records: vec![FlightRecord {
                rank: 2,
                clock: 7,
                ts_ns: 99,
                event: ProtoEvent::GateOpen {
                    released: 1,
                    waited_ns: 4_000,
                },
            }],
            snapshot: snapshot.clone(),
        };
        match roundtrip(&msg) {
            WireMsg::Telemetry {
                node,
                incarnation,
                records,
                snapshot: snap,
            } => {
                assert_eq!(node, "cn2");
                assert_eq!(incarnation, 1);
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].clock, 7);
                assert_eq!(snap, snapshot);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(WireMsg::decode(&[]).is_err());
        assert!(WireMsg::decode(&[0xff; 64]).is_err());
        // A truncated valid message is also an error, not a panic.
        let bytes = WireMsg::Shutdown.encode();
        for cut in 0..bytes.len() {
            let _ = WireMsg::decode(&bytes[..cut]);
        }
    }
}
