//! Real multi-process deployment: the socket backend of the runtime.
//!
//! The in-process fabric remains the default (and the benchmarking
//! substrate — figures 5/6 are byte-identical with or without this
//! module compiled); `mpirun --backend socket` instead launches every
//! deployment node as a real OS process:
//!
//! - [`wire`] — the bincode-framed cross-process protocol;
//! - [`gateway`] — the transport↔fabric bridge each process runs;
//! - [`child`] — role runners re-executed from the launcher binary;
//! - [`parent`] — the supervising dispatcher: process launch, address
//!   maps, fail-stop detection, respawn with backoff, real-`SIGKILL`
//!   chaos, graceful teardown, dump merging;
//! - [`sig`] — the minimal `kill(2)`/`signal(2)` FFI this needs.

pub mod child;
pub mod gateway;
pub mod parent;
pub mod sig;
pub mod wire;

pub use child::{maybe_run_child, transport_config};
pub use gateway::{Control, Gateway, GatewayRole, Topology};
pub use parent::{run_proc, ProcError, ProcOptions, ProcReport};
pub use wire::WireMsg;
