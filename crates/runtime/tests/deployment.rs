//! Deployment-variation tests on the real runtime: multiple event
//! loggers, the adaptive checkpoint policy, restart-delay handling, and
//! the Cannon kernel (2-D torus) under crashes.

use mvr_ckpt::Policy;
use mvr_core::{Payload, Rank};
use mvr_runtime::{run_cluster, Cluster, ClusterConfig, NodeMpi, SchedulerConfig};
use mvr_workloads::{cannon, cannon_reference_checksum, CannonConfig, CannonState};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn cannon_app(n: usize) -> impl Fn(&mut NodeMpi, Option<Payload>) -> mvr_mpi::MpiResult<Payload> {
    move |mpi, restored| {
        let st: Option<CannonState> = restored.map(|p| bincode::deserialize(p.as_slice()).unwrap());
        let sum = cannon(mpi, &CannonConfig { n }, st)?;
        Ok(Payload::from_vec(sum.to_le_bytes().to_vec()))
    }
}

fn check_cannon(results: &[Payload], n: usize) {
    let expect = cannon_reference_checksum(n);
    for (r, p) in results.iter().enumerate() {
        let got = f64::from_le_bytes(p.as_slice().try_into().unwrap());
        assert!((got - expect).abs() < 1e-6, "rank {r}: {got} vs {expect}");
    }
}

#[test]
fn cannon_runs_fault_free_on_the_runtime() {
    let results = run_cluster(
        ClusterConfig {
            world: 4,
            ..Default::default()
        },
        cannon_app(24),
        TIMEOUT,
    )
    .unwrap();
    check_cannon(&results, 24);
}

#[test]
fn cannon_survives_crashes_on_a_3x3_torus() {
    let cfg = ClusterConfig {
        world: 9,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, cannon_app(36));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(8));
        handle.kill(Rank(4)); // the torus centre
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(0));
    });
    let results = cluster.wait(TIMEOUT).expect("Cannon recovers");
    killer.join().unwrap();
    check_cannon(&results, 36);
}

#[test]
fn multiple_event_loggers_partition_the_ranks() {
    // §4.5: "several event loggers may be used in a system, but every
    // communication daemon must be connected to exactly one event logger."
    let cfg = ClusterConfig {
        world: 6,
        el_shards: 3,
        ..Default::default()
    };
    let app = |mpi: &mut NodeMpi, _restored: Option<Payload>| {
        let sum = mpi.allreduce(mvr_mpi::ReduceOp::Sum, &[mpi.rank().0 as u64 + 1])?;
        let mut acc = 0u64;
        for i in 0..200u64 {
            let s = mpi.allreduce(mvr_mpi::ReduceOp::Sum, &[i])?;
            acc = acc.wrapping_add(s[0]);
        }
        Ok(Payload::from_vec((sum[0] + acc).to_le_bytes().to_vec()))
    };
    let cluster = Cluster::launch(cfg, app);
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(6));
        handle.kill(Rank(5));
        std::thread::sleep(Duration::from_millis(6));
        handle.kill(Rank(2));
    });
    let results = cluster.wait(TIMEOUT).expect("multi-EL deployment recovers");
    killer.join().unwrap();
    let expect = 21 + (0..200u64).map(|i| i * 6).sum::<u64>();
    for p in &results {
        assert_eq!(u64::from_le_bytes(p.as_slice().try_into().unwrap()), expect);
    }
}

#[test]
fn adaptive_checkpoint_policy_on_the_runtime() {
    let cfg = ClusterConfig {
        world: 4,
        checkpointing: Some(SchedulerConfig {
            policy: Policy::Adaptive,
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, cannon_app(24));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(1));
    });
    let results = cluster.wait(TIMEOUT).expect("adaptive policy run recovers");
    killer.join().unwrap();
    check_cannon(&results, 24);
}

#[test]
fn restart_delay_is_respected() {
    let cfg = ClusterConfig {
        world: 3,
        restart_delay: Duration::from_millis(20),
        ..Default::default()
    };
    let app = |mpi: &mut NodeMpi, _restored: Option<Payload>| {
        let mut acc = 0u64;
        for i in 0..300u64 {
            let s = mpi.allreduce(mvr_mpi::ReduceOp::Sum, &[i + mpi.rank().0 as u64])?;
            acc = acc.wrapping_add(s[0]);
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    };
    let cluster = Cluster::launch(cfg, app);
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        handle.kill(Rank(1));
    });
    let results = cluster
        .wait(TIMEOUT)
        .expect("completes with delayed restart");
    killer.join().unwrap();
    let expect: u64 = (0..300u64).map(|i| 3 * i + 3).sum();
    for p in &results {
        assert_eq!(u64::from_le_bytes(p.as_slice().try_into().unwrap()), expect);
    }
}

#[test]
fn killing_the_event_logger_halts_the_system() {
    // The EL is the single component that must be reliable (§4.3): with
    // it gone, pessimistic logging cannot proceed and the system stalls
    // rather than violating the protocol.
    let cfg = ClusterConfig {
        world: 3,
        ..Default::default()
    };
    let app = |mpi: &mut NodeMpi, _restored: Option<Payload>| {
        let mut acc = 0u64;
        for i in 0..50_000u64 {
            let s = mpi.allreduce(mvr_mpi::ReduceOp::Sum, &[i])?;
            acc = acc.wrapping_add(s[0]);
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    };
    let cluster = Cluster::launch(cfg, app);
    let fabric_kill = {
        let handle = cluster.fault_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            // No public API kills the EL (it is assumed reliable); reach
            // through the fault handle's fabric via a dedicated method.
            handle.kill_event_logger(0);
        })
    };
    let err = cluster
        .wait(Duration::from_secs(3))
        .expect_err("system must stall without the EL");
    fabric_kill.join().unwrap();
    assert!(
        matches!(err, mvr_runtime::ClusterError::Timeout(_)),
        "{err:?}"
    );
}

#[test]
fn wait_report_counts_reincarnations() {
    let cfg = ClusterConfig {
        world: 3,
        ..Default::default()
    };
    let app = |mpi: &mut NodeMpi, _restored: Option<Payload>| {
        let mut acc = 0u64;
        for i in 0..400u64 {
            let s = mpi.allreduce(mvr_mpi::ReduceOp::Sum, &[i])?;
            acc = acc.wrapping_add(s[0]);
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    };
    let cluster = Cluster::launch(cfg, app);
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        handle.kill(Rank(2));
        std::thread::sleep(Duration::from_millis(5));
        handle.kill(Rank(1));
    });
    let report = cluster.wait_report(TIMEOUT).expect("completes");
    killer.join().unwrap();
    assert_eq!(report.results.len(), 3);
    // The kills may land before launch completes or after the run ends;
    // when they land mid-run, each costs one reincarnation.
    assert!(
        report.restarts <= 4,
        "unexpected restart storm: {}",
        report.restarts
    );
    let expect: u64 = (0..400u64).map(|i| 3 * i).sum();
    for p in &report.results {
        assert_eq!(u64::from_le_bytes(p.as_slice().try_into().unwrap()), expect);
    }
}

#[test]
fn sixteen_rank_ring_with_scattered_kills() {
    // A larger deployment: 16 ranks (32 threads + services), three kills.
    let cfg = ClusterConfig {
        world: 16,
        el_shards: 2,
        ..Default::default()
    };
    let app = |mpi: &mut NodeMpi, _restored: Option<Payload>| {
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        let mut acc = 0u64;
        for i in 0..150u32 {
            let token = ((i as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                mvr_mpi::Source::Rank(prev),
                mvr_mpi::Tag::Value(7),
            )?;
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(u64::from_le_bytes(body.as_slice().try_into().unwrap()));
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    };
    let cluster = Cluster::launch(cfg, app);
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        for (ms, v) in [(8u64, 3u32), (6, 11), (6, 7)] {
            std::thread::sleep(Duration::from_millis(ms));
            handle.kill(Rank(v));
        }
    });
    let results = cluster.wait(TIMEOUT).expect("16-rank ring recovers");
    killer.join().unwrap();
    for (r, p) in results.iter().enumerate() {
        let prev = (r as u32 + 15) % 16;
        let mut expect = 0u64;
        for i in 0..150u64 {
            expect = expect
                .wrapping_mul(31)
                .wrapping_add((i << 32) | prev as u64);
        }
        assert_eq!(
            u64::from_le_bytes(p.as_slice().try_into().unwrap()),
            expect,
            "rank {r}"
        );
    }
}
