//! Conservation invariants: the message ledger must balance, fault-free
//! and under seeded crash storms alike.
//!
//! The headline identity `sum(msgs_sent) == sum(msgs_delivered) +
//! sum(duplicates_dropped) − sum(replayed_deliveries)` mixes two ledgers
//! that only coincide fault-free: the *logical* ledger (what the
//! application's finishing incarnations executed) and the *wire* ledger
//! (copies that crossed the fabric, including retransmissions to dead
//! incarnations that no finishing rank ever consumed). Without faults
//! the correction terms are zero and the identity is asserted literally.
//! Under chaos the suite asserts the forms that are actually conserved:
//!
//!   * logical flow — for a symmetric exchange every finishing
//!     incarnation pairs each send with a delivery, so
//!     `sum(msgs_sent) == sum(msgs_delivered)` regardless of how many
//!     incarnations died in between;
//!   * exactly-once at the event logger — the EL's cumulative *unique*
//!     event count equals the fault-free delivery count: restarts,
//!     replays and retransmissions never double-log a logical delivery;
//!   * cross-layer histogram identities — every deferred send left one
//!     gate-wait sample, every retired batch one EL-RTT sample, every
//!     completed replay one replay-duration sample. The histograms ride
//!     in [`mvr_runtime::RunReport::timings`]; the counters in
//!     [`mvr_runtime::RunReport::rank_metrics`]. They are maintained by
//!     different layers, so agreement is a real consistency check.

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_runtime::{
    merged_unique_events, ChaosConfig, Cluster, ClusterConfig, NodeMpi, RunReport, SchedulerConfig,
    TurbulenceConfig,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);
const WORLD: u32 = 4;
const ITERS: u32 = 200;

#[derive(Clone, Serialize, Deserialize)]
struct RingState {
    iter: u32,
    acc: u64,
}

/// Symmetric ring exchange: every rank's finishing incarnation performs
/// exactly one delivery per send, and the accumulator has a closed form.
fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: RingState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => RingState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        while st.iter < iters {
            let token = ((st.iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            st.acc = st.acc.wrapping_mul(31).wrapping_add(v);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_ring_acc(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc: u64 = 0;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(((i as u64) << 32) | prev as u64);
    }
    acc
}

fn check_results(report: &RunReport) {
    for (r, p) in report.results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().expect("8 bytes"));
        assert_eq!(got, expected_ring_acc(r as u32, WORLD, ITERS), "rank {r}");
    }
}

/// The identities that hold in every run, faulty or not.
fn check_cross_layer_identities(report: &RunReport, label: &str) {
    let m = &report.rank_metrics;
    assert_eq!(m.len(), WORLD as usize, "{label}: one Metrics per rank");

    let deferred: u64 = m.iter().map(|x| x.gate_deferred_sends).sum();
    assert_eq!(
        report.timings.gate_wait.count(),
        deferred,
        "{label}: one gate-wait sample per deferred send"
    );

    let acked: u64 = m.iter().map(|x| x.el_batches_acked).sum();
    assert_eq!(
        report.timings.el_ack_rtt.count(),
        acked,
        "{label}: one EL-RTT sample per retired batch"
    );

    assert_eq!(
        report.timings.replay.count(),
        report.replays_completed,
        "{label}: one replay-duration sample per completed replay"
    );

    for (r, x) in m.iter().enumerate() {
        // The final flush batch is typically still in flight at finish,
        // so retired ≤ shipped (never the other way around).
        assert!(
            x.el_batches_acked <= x.el_batches_sent,
            "{label}: rank {r} retired {} of {} shipped batches",
            x.el_batches_acked,
            x.el_batches_sent
        );
    }
}

#[test]
fn conservation_exact_without_faults() {
    // Seeded link delays perturb interleavings but nothing dies: every
    // correction term must be exactly zero and the literal identity
    // sent == delivered + duplicates − replayed must hold.
    let cluster = Cluster::launch(
        ClusterConfig {
            world: WORLD,
            turbulence: Some(TurbulenceConfig::delays(0x5EED_BA1A, 80)),
            ..Default::default()
        },
        ring_app(ITERS),
    );
    let counters = cluster.el_event_counters();
    let report = cluster.wait_report(TIMEOUT).expect("fault-free run");
    check_results(&report);

    let m = &report.rank_metrics;
    let sent: u64 = m.iter().map(|x| x.msgs_sent).sum();
    let delivered: u64 = m.iter().map(|x| x.msgs_delivered).sum();
    let duplicates: u64 = m.iter().map(|x| x.duplicates_dropped).sum();
    let replayed: u64 = m.iter().map(|x| x.replayed_deliveries).sum();
    assert_eq!(duplicates, 0, "no faults, no retransmissions, no dups");
    assert_eq!(replayed, 0, "no faults, no replay");
    assert_eq!(
        sent,
        delivered + duplicates - replayed,
        "fault-free ledger must balance exactly"
    );
    assert_eq!(sent, (WORLD * ITERS) as u64, "one send per rank per iter");

    check_cross_layer_identities(&report, "fault-free");

    // Every delivery became exactly one unique EL event. The tail batch
    // of each rank races dispatcher teardown (the EL may be killed with
    // the final flush still in its mailbox), hence the small slack below
    // the exact count — but never above it.
    let el_unique: u64 = counters.iter().map(|c| c.load(Ordering::Acquire)).sum();
    let logical = (WORLD * ITERS) as u64;
    assert!(
        el_unique <= logical,
        "EL over-counted: {el_unique} > {logical}"
    );
    assert!(
        el_unique >= logical - (16 * WORLD) as u64,
        "EL lost more than a tail batch per rank: {el_unique} < {logical}"
    );
}

#[test]
fn conservation_under_seeded_chaos() {
    // Crash storms with re-kills and continuous checkpointing. Dead
    // incarnations take their counters with them; what must survive is
    // the logical balance of the finishing incarnations, the EL's
    // exactly-once unique-event count, and the histogram identities.
    for seed in [0xC0FFEEu64, 0x2A] {
        let cluster = Cluster::launch(
            ClusterConfig {
                world: WORLD,
                checkpointing: Some(SchedulerConfig {
                    interval: Duration::from_millis(1),
                    ..Default::default()
                }),
                chaos: Some(ChaosConfig {
                    seed,
                    kills: 5,
                    rekill_pct: 50,
                    max_burst: 2,
                    ..Default::default()
                }),
                turbulence: Some(TurbulenceConfig::delays(seed ^ 0x7A17, 50)),
                ..Default::default()
            },
            ring_app(ITERS),
        );
        let counters = cluster.el_event_counters();
        let report = cluster.wait_report(TIMEOUT).expect("storm masked");
        check_results(&report);

        let m = &report.rank_metrics;
        let sent: u64 = m.iter().map(|x| x.msgs_sent).sum();
        let delivered: u64 = m.iter().map(|x| x.msgs_delivered).sum();
        let duplicates: u64 = m.iter().map(|x| x.duplicates_dropped).sum();
        let replayed: u64 = m.iter().map(|x| x.replayed_deliveries).sum();
        let retransmissions: u64 = m.iter().map(|x| x.retransmissions).sum();

        // Logical flow balances: the exchange is symmetric, so each
        // finishing incarnation's sends and deliveries pair off exactly,
        // however many predecessors died.
        assert_eq!(sent, delivered, "seed {seed:#x}: logical ledger");
        // Duplicates are always the shadow of a retransmission.
        assert!(
            duplicates <= retransmissions,
            "seed {seed:#x}: {duplicates} dups from {retransmissions} retx"
        );
        assert!(
            replayed <= delivered,
            "seed {seed:#x}: replayed deliveries are deliveries"
        );
        if report.restarts > 0 {
            assert!(
                report.recoveries > 0,
                "seed {seed:#x}: restarts without recoveries"
            );
        }

        check_cross_layer_identities(&report, "chaos");

        // Exactly-once at the EL: ~100 retransmissions and repeated
        // crash/replay cycles must not change the unique-event count —
        // re-logged events deduplicate against the receiver-clock
        // watermark. Upper bound is hard; the lower bound leaves slack
        // for tail batches lost to the teardown race.
        let el_unique: u64 = counters.iter().map(|c| c.load(Ordering::Acquire)).sum();
        let logical = (WORLD * ITERS) as u64;
        assert!(
            el_unique <= logical,
            "seed {seed:#x}: EL double-counted under chaos: {el_unique} > {logical}"
        );
        assert!(
            el_unique >= logical - (16 * WORLD) as u64,
            "seed {seed:#x}: EL lost events: {el_unique} < {logical}"
        );
    }
}

#[test]
fn conservation_across_shard_ledgers_with_replicas() {
    // Sharded, replicated event logging under a storm that also kills EL
    // replicas. The cluster-wide unique-event count is NOT the sum of
    // the flat counters (each shard's ledger exists R times); it is the
    // per-shard max across replicas, summed across shards — exactly what
    // `merged_unique_events` computes. Rank crashes, replica crashes,
    // retransmissions and replica catch-up absorption must all leave
    // that merged count at the fault-free delivery count: exactly-once
    // holds per shard ledger, and absorption never double-counts.
    const REPLICAS: u32 = 2;
    const SHARDS: u32 = 4;
    let cluster = Cluster::launch(
        ClusterConfig {
            world: WORLD,
            el_shards: SHARDS,
            el_replicas: REPLICAS,
            checkpointing: Some(SchedulerConfig {
                interval: Duration::from_millis(1),
                ..Default::default()
            }),
            chaos: Some(ChaosConfig {
                seed: 0xC0FFEE,
                kills: 4,
                rekill_pct: 30,
                el_kill_pct: 50,
                el_total: SHARDS * REPLICAS,
                ..Default::default()
            }),
            ..Default::default()
        },
        ring_app(ITERS),
    );
    let counters = cluster.el_event_counters();
    let report = cluster.wait_report(TIMEOUT).expect("sharded storm masked");
    check_results(&report);
    check_cross_layer_identities(&report, "sharded");

    let per_replica: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Acquire)).collect();
    assert_eq!(per_replica.len(), (SHARDS * REPLICAS) as usize);
    let el_unique = merged_unique_events(&per_replica, REPLICAS as usize);
    let logical = (WORLD * ITERS) as u64;
    assert!(
        el_unique <= logical,
        "shard ledgers over-counted: {el_unique} > {logical}"
    );
    assert!(
        el_unique >= logical - (16 * WORLD) as u64,
        "shard ledgers lost events: {el_unique} < {logical}"
    );
}
