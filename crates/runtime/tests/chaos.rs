//! Seeded chaos regression tests: deterministic fault placement via the
//! fabric's turbulence layer (crash-on-Nth-send/receive lands crashes at
//! exact causal points — mid-replay, mid-checkpoint), plus the hardened
//! dispatcher restart policy (non-blocking scheduled respawns, restart
//! budget, fail-fast without `auto_restart`) and the randomized
//! crash-storm driver.
//!
//! Every failure here is replayable: the fault schedule is a pure
//! function of the seed and trigger counts in the test body.

use mvr_core::{NodeId, Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_runtime::{
    fail_stop_group, ChaosConfig, Cluster, ClusterConfig, ClusterError, CountTrigger, NodeMpi,
    SchedulerConfig, ShardMap, TurbulenceConfig,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(60);

#[derive(Clone, Serialize, Deserialize)]
struct RingState {
    iter: u32,
    acc: u64,
}

/// The deterministic ring exchange of `tests/cluster.rs`: every rank's
/// accumulator has a closed-form expected value, so a verified result is
/// proof of exactly-once, correctly-ordered delivery.
fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: RingState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => RingState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev_rank = (me + n - 1) % n;
        let prev = Rank(prev_rank);
        while st.iter < iters {
            let token = ((st.iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            assert_eq!(v, ((st.iter as u64) << 32) | prev_rank as u64);
            st.acc = st.acc.wrapping_mul(31).wrapping_add(v);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_ring_acc(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc: u64 = 0;
    for i in 0..iters {
        let v = ((i as u64) << 32) | prev as u64;
        acc = acc.wrapping_mul(31).wrapping_add(v);
    }
    acc
}

fn check_ring_results(results: &[Payload], n: u32, iters: u32) {
    for (r, p) in results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().expect("8 bytes"));
        assert_eq!(
            got,
            expected_ring_acc(r as u32, n, iters),
            "rank {r}: result diverges from the fault-free execution"
        );
    }
}

fn ckpt_cfg() -> Option<SchedulerConfig> {
    Some(SchedulerConfig {
        interval: Duration::from_millis(1),
        ..Default::default()
    })
}

// ---------------------------------------------------------------------
// Turbulence: seeded delays and count-trigger crashes
// ---------------------------------------------------------------------

#[test]
fn seeded_link_delays_preserve_results() {
    // Delay-only turbulence perturbs interleavings without any crash; the
    // run must be indistinguishable from a fault-free one.
    let (n, iters) = (3, 120);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            turbulence: Some(TurbulenceConfig::delays(0xD31A_5EED, 120)),
            ..Default::default()
        },
        ring_app(iters),
    );
    let results = cluster.wait(TIMEOUT).expect("delays are not faults");
    check_ring_results(&results, n, iters);
}

#[test]
fn crash_on_nth_send_recovers() {
    // Rank 1 dies fail-stop the instant its daemon completes send #50 — a
    // fixed point of its causal history, replayable from the config alone.
    let (n, iters) = (3, 250);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            turbulence: Some(TurbulenceConfig {
                seed: 0xAB,
                crash_on_send: vec![CountTrigger {
                    watch: NodeId::Computing(Rank(1)),
                    at: 50,
                    kill: fail_stop_group(Rank(1)),
                }],
                ..Default::default()
            }),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster.wait_report(TIMEOUT).expect("recovers");
    check_ring_results(&report.results, n, iters);
    assert!(report.restarts >= 1, "the trigger must have fired");
    assert!(
        report.recoveries >= 1,
        "the reincarnation must have run a recovery"
    );
    assert!(report.replays_completed >= 1);
}

#[test]
fn rekill_during_replay_recovers() {
    // Receive-counters are cumulative across incarnations: the first
    // trigger kills rank 2, the second (a few deliveries later) lands on
    // its reincarnation while it is still consuming retransmissions —
    // i.e. mid-replay. The third incarnation must still converge on the
    // fault-free result.
    let (n, iters) = (3, 300);
    let watch = NodeId::Computing(Rank(2));
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            turbulence: Some(TurbulenceConfig {
                seed: 0x2E,
                crash_on_recv: vec![
                    CountTrigger {
                        watch,
                        at: 60,
                        kill: fail_stop_group(Rank(2)),
                    },
                    CountTrigger {
                        watch,
                        at: 72,
                        kill: fail_stop_group(Rank(2)),
                    },
                ],
                ..Default::default()
            }),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster.wait_report(TIMEOUT).expect("survives re-kill");
    check_ring_results(&report.results, n, iters);
    assert!(report.restarts >= 2, "both triggers must have fired");
}

#[test]
fn overlapping_rank_crashes_recover() {
    // Two ranks die at nearly the same causal instant (each on its own
    // 40th send); their recoveries proceed concurrently under the
    // non-blocking respawn scheduler.
    let (n, iters) = (4, 300);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            restart_delay: Duration::from_millis(5),
            turbulence: Some(TurbulenceConfig {
                seed: 0x0B,
                crash_on_send: vec![
                    CountTrigger {
                        watch: NodeId::Computing(Rank(1)),
                        at: 40,
                        kill: fail_stop_group(Rank(1)),
                    },
                    CountTrigger {
                        watch: NodeId::Computing(Rank(3)),
                        at: 40,
                        kill: fail_stop_group(Rank(3)),
                    },
                ],
                ..Default::default()
            }),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster.wait_report(TIMEOUT).expect("overlap recovers");
    check_ring_results(&report.results, n, iters);
    assert!(report.restarts >= 2);
}

#[test]
fn checkpoint_server_crash_mid_checkpoint() {
    // §4.3: "in case of crash of ... checkpoint servers, the related
    // processes may restart from scratch, at worst". The CS is killed the
    // instant it accepts its 4th packet — mid-checkpoint-traffic — then a
    // rank dies; the rank's restart degrades to scratch (or to whatever
    // image survived) and the run still completes correctly.
    //
    // The event logger, by contrast, is the one component this deployment
    // *assumes* reliable (§4.3); no test here kills it, and the EL-kill
    // stall behaviour is pinned by `tests/deployment.rs`.
    let (n, iters) = (3, 300);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            turbulence: Some(TurbulenceConfig {
                seed: 0xC5,
                crash_on_recv: vec![CountTrigger {
                    watch: NodeId::CheckpointServer(0),
                    at: 4,
                    kill: vec![NodeId::CheckpointServer(0)],
                }],
                crash_on_send: vec![CountTrigger {
                    watch: NodeId::Computing(Rank(0)),
                    at: 80,
                    kill: fail_stop_group(Rank(0)),
                }],
                ..Default::default()
            }),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster.wait_report(TIMEOUT).expect("survives CS loss");
    check_ring_results(&report.results, n, iters);
    assert!(
        report.service_restarts >= 1,
        "the dispatcher must have relaunched the checkpoint server"
    );
    assert!(report.restarts >= 1);
}

// ---------------------------------------------------------------------
// Dispatcher restart policy
// ---------------------------------------------------------------------

#[test]
fn auto_restart_off_fails_fast_with_rank_lost() {
    // Without the execution monitor's relaunch there is no recovery path:
    // the run must fail immediately with RankLost, not idle to timeout.
    let cluster = Cluster::launch(
        ClusterConfig {
            world: 2,
            auto_restart: false,
            ..Default::default()
        },
        ring_app(100_000),
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(1));
    });
    let start = Instant::now();
    let err = cluster.wait(TIMEOUT).expect_err("rank is unrecoverable");
    killer.join().unwrap();
    match err {
        ClusterError::RankLost { rank } => assert_eq!(rank, Rank(1)),
        other => panic!("expected RankLost, got: {other}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "must fail fast, not wait out the {TIMEOUT:?} timeout"
    );
}

#[test]
fn restart_budget_exhaustion_fails_the_run() {
    let cluster = Cluster::launch(
        ClusterConfig {
            world: 2,
            max_rank_restarts: 1,
            ..Default::default()
        },
        ring_app(100_000),
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(0));
        // Wait for the reincarnation, then kill it too: budget of 1 is
        // now exhausted.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !handle.is_alive(Rank(0)) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(5));
        handle.kill(Rank(0));
    });
    let err = cluster.wait(TIMEOUT).expect_err("budget exhausted");
    killer.join().unwrap();
    match err {
        ClusterError::RestartBudgetExhausted { rank, restarts } => {
            assert_eq!(rank, Rank(0));
            assert!(restarts >= 1);
        }
        other => panic!("expected RestartBudgetExhausted, got: {other}"),
    }
}

#[test]
fn restart_delay_does_not_block_other_recoveries() {
    // Two ranks killed back-to-back with a sizeable restart_delay: under
    // the old blocking policy the second respawn waited out the first
    // rank's full sleep; scheduled respawns overlap the delays instead.
    let (n, iters) = (4, 200);
    let delay = Duration::from_millis(40);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            restart_delay: delay,
            checkpointing: ckpt_cfg(),
            ..Default::default()
        },
        ring_app(iters),
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(1));
        handle.kill(Rank(2));
    });
    let report = cluster.wait_report(TIMEOUT).expect("both recover");
    killer.join().unwrap();
    check_ring_results(&report.results, n, iters);
    assert!(report.restarts >= 2);
}

// ---------------------------------------------------------------------
// Randomized (but seeded) crash storms
// ---------------------------------------------------------------------

#[test]
fn seeded_chaos_storm_completes_with_correct_results() {
    let (n, iters) = (4, 400);
    let chaos = ChaosConfig {
        seed: 0xB00,
        kills: 5,
        max_burst: 2,
        rekill_pct: 40,
        cs_kill_pct: 20,
        ..Default::default()
    };
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            chaos: Some(chaos.clone()),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster
        .wait_report(TIMEOUT)
        .unwrap_or_else(|e| panic!("storm seed {:#x} failed: {e}", chaos.seed));
    check_ring_results(&report.results, n, iters);
    let storm = report.chaos.expect("chaos driver ran");
    assert!(!storm.plan.is_empty());
    assert_eq!(
        storm.plan,
        chaos.plan(n),
        "the executed plan must be replayable from the seed"
    );
}

#[test]
fn chaos_storm_under_ring_backpressure() {
    // Storm with the fabric's SPSC rings shrunk to 2 slots: bursts
    // overflow the ring fast path into the spill lane constantly, so
    // kills land while lanes hold spilled messages and producers race the
    // drain. Kill-empties-channels (§4.1) and per-sender FIFO must hold
    // across the ring→spill→ring seam; the closed-form ring accumulator
    // proves exactly-once, correctly-ordered delivery end to end.
    let (n, iters) = (4, 300);
    let chaos = ChaosConfig {
        seed: 0xBACC,
        kills: 4,
        max_burst: 2,
        rekill_pct: 30,
        ..Default::default()
    };
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            ring_capacity: Some(2),
            chaos: Some(chaos.clone()),
            turbulence: Some(TurbulenceConfig::delays(0xBACC, 60)),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster
        .wait_report(TIMEOUT)
        .unwrap_or_else(|e| panic!("backpressure storm seed {:#x} failed: {e}", chaos.seed));
    check_ring_results(&report.results, n, iters);
    assert!(report.restarts >= 1, "the storm must have killed someone");
}

// ---------------------------------------------------------------------
// Replicated event loggers: quorum failover
// ---------------------------------------------------------------------

#[test]
fn el_replica_kill_mid_run_is_masked_by_quorum_failover() {
    // The sharded/replicated acceptance scenario: 4 shards × 2 replicas,
    // continuous checkpointing, the online invariant monitor on, and one
    // replica of rank 0's shard killed mid-run. With R = 2 the quorum is
    // 2, so the daemons' gates stall during the sub-quorum window; the
    // dispatcher revives the replica on its surviving ledger (absorbing
    // the live peer's snapshot), its catch-up announcement re-acks the
    // watermarks, and the run completes with fault-free results. A
    // monitor violation would fail the wait, so success implies the
    // invariants held throughout the failover.
    let (n, iters) = (4, 300);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            el_shards: 4,
            el_replicas: 2,
            checkpointing: ckpt_cfg(),
            monitor: true,
            ..Default::default()
        },
        ring_app(iters),
    );
    let handle = cluster.fault_handle();
    let shard = ShardMap::new(4).shard_for(Rank(0));
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(15));
        handle.kill_el_replica(shard, 1);
    });
    let report = cluster
        .wait_report(TIMEOUT)
        .expect("an EL replica kill must be masked by the quorum");
    killer.join().unwrap();
    check_ring_results(&report.results, n, iters);
    assert!(
        report.service_restarts >= 1,
        "the dispatcher must have revived the killed replica"
    );
    assert_eq!(
        report.restarts, 0,
        "no rank may die because an EL replica did"
    );
}

#[test]
fn chaos_storm_with_el_replica_kills() {
    // Rank kills and EL replica kills interleaved by the seeded driver:
    // every non-rekill event also takes down one of the four replicas
    // (2 shards × 2). Revival + catch-up must keep masking while ranks
    // crash and replay concurrently.
    let (n, iters) = (4, 300);
    let chaos = ChaosConfig {
        seed: 0xE1,
        kills: 3,
        el_kill_pct: 100,
        el_total: 4,
        ..Default::default()
    };
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            el_shards: 2,
            el_replicas: 2,
            checkpointing: ckpt_cfg(),
            chaos: Some(chaos.clone()),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster
        .wait_report(TIMEOUT)
        .unwrap_or_else(|e| panic!("EL storm seed {:#x} failed: {e}", chaos.seed));
    check_ring_results(&report.results, n, iters);
    let storm = report.chaos.expect("chaos driver ran");
    assert!(
        storm.el_kills >= 1,
        "at least one EL replica kill must have executed"
    );
    assert_eq!(
        storm.plan,
        chaos.plan(n),
        "EL kills must be replayable from the seed"
    );
}

#[test]
fn chaos_storm_with_turbulence_delays() {
    // Storm + seeded link jitter together: the harshest standard setup of
    // the soak harness, pinned here at small scale as a regression.
    let (n, iters) = (3, 250);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            checkpointing: ckpt_cfg(),
            chaos: Some(ChaosConfig {
                seed: 0x51,
                kills: 3,
                ..Default::default()
            }),
            turbulence: Some(TurbulenceConfig::delays(0x51, 80)),
            ..Default::default()
        },
        ring_app(iters),
    );
    let report = cluster.wait_report(TIMEOUT).expect("storm + jitter");
    check_ring_results(&report.results, n, iters);
}
