//! Live-runtime tests for the baseline protocol hostings: MPICH-V1
//! (Channel Memory logging, from-scratch replay recovery) and MPICH-P4
//! (no fault tolerance — a crash kills the run).

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, ReduceOp, Source, Tag};
use mvr_runtime::{run_cluster, Cluster, ClusterConfig, ClusterError, NodeMpi, RuntimeProtocol};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, _restored| {
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        let mut acc = 0u64;
        for i in 0..iters {
            let token = ((i as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().unwrap());
            acc = acc.wrapping_mul(31).wrapping_add(v);
        }
        Ok(Payload::from_vec(acc.to_le_bytes().to_vec()))
    }
}

fn expected_acc(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(((i as u64) << 32) | prev as u64);
    }
    acc
}

fn check(results: &[Payload], n: u32, iters: u32) {
    for (r, p) in results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().unwrap());
        assert_eq!(got, expected_acc(r as u32, n, iters), "rank {r}");
    }
}

#[test]
fn v1_fault_free_ring() {
    let (n, iters) = (4, 300);
    let results = run_cluster(
        ClusterConfig {
            world: n,
            protocol: RuntimeProtocol::V1,
            ..Default::default()
        },
        ring_app(iters),
        TIMEOUT,
    )
    .unwrap();
    check(&results, n, iters);
}

#[test]
fn v1_fault_free_collectives() {
    let results = run_cluster(
        ClusterConfig {
            world: 5,
            protocol: RuntimeProtocol::V1,
            ..Default::default()
        },
        |mpi: &mut NodeMpi, _| {
            let sum = mpi.allreduce(ReduceOp::Sum, &[mpi.rank().0 as u64 + 1])?;
            Ok(Payload::from_vec(sum[0].to_le_bytes().to_vec()))
        },
        TIMEOUT,
    )
    .unwrap();
    for p in results {
        assert_eq!(u64::from_le_bytes(p.as_slice().try_into().unwrap()), 15);
    }
}

#[test]
fn v1_recovers_from_a_crash_via_channel_memory_replay() {
    // "After a crash, a re-executing process retrieves all lost receptions
    // in the correct order by requesting them to its Channel Memory" —
    // with no checkpoint image, recovery is a from-scratch replay, fully
    // independent of the other processes.
    let (n, iters) = (4, 500);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            protocol: RuntimeProtocol::V1,
            ..Default::default()
        },
        ring_app(iters),
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(2));
        std::thread::sleep(Duration::from_millis(15));
        handle.kill(Rank(0));
    });
    let results = cluster.wait(TIMEOUT).expect("V1 recovers via CM replay");
    killer.join().unwrap();
    check(&results, n, iters);
}

#[test]
fn p4_fault_free_ring() {
    let (n, iters) = (4, 200);
    let results = run_cluster(
        ClusterConfig {
            world: n,
            protocol: RuntimeProtocol::P4,
            ..Default::default()
        },
        ring_app(iters),
        TIMEOUT,
    )
    .unwrap();
    check(&results, n, iters);
}

#[test]
fn p4_crash_is_fatal() {
    let cluster = Cluster::launch(
        ClusterConfig {
            world: 3,
            protocol: RuntimeProtocol::P4,
            ..Default::default()
        },
        ring_app(100_000), // long enough that the kill lands mid-run
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(1));
    });
    let err = cluster
        .wait(TIMEOUT)
        .expect_err("P4 cannot survive a crash");
    killer.join().unwrap();
    match err {
        ClusterError::AppFailed { rank, error } => {
            assert_eq!(rank, Rank(1));
            assert!(error.contains("no fault tolerance"), "{error}");
        }
        other => panic!("expected AppFailed, got {other:?}"),
    }
}
