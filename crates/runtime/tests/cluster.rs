//! End-to-end fault-tolerance tests on the real multithreaded runtime:
//! applications running over the full stack (MPI library → daemon →
//! V2 engine → fabric → event logger / checkpoint server), with fail-stop
//! kills injected at arbitrary times. The invariant checked everywhere is
//! the paper's: the post-recovery execution is equivalent to a fault-free
//! one.

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, ReduceOp, Source, Tag};
use mvr_runtime::{run_cluster, Cluster, ClusterConfig, NodeMpi, SchedulerConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// Test applications
// ---------------------------------------------------------------------

#[derive(Clone, Serialize, Deserialize)]
struct RingState {
    iter: u32,
    acc: u64,
}

/// A deterministic ring exchange with per-iteration checkpoint sites.
/// Every rank's accumulator has a closed-form expected value.
fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut st: RingState = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).expect("valid state"),
            None => RingState { iter: 0, acc: 0 },
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev_rank = (me + n - 1) % n;
        let prev = Rank(prev_rank);
        while st.iter < iters {
            let token = ((st.iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            assert_eq!(
                v,
                ((st.iter as u64) << 32) | prev_rank as u64,
                "wrong token content"
            );
            st.acc = st.acc.wrapping_mul(31).wrapping_add(v);
            st.iter += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).expect("serializable"))?;
        }
        Ok(Payload::from_vec(st.acc.to_le_bytes().to_vec()))
    }
}

fn expected_ring_acc(me: u32, n: u32, iters: u32) -> u64 {
    let prev = (me + n - 1) % n;
    let mut acc: u64 = 0;
    for i in 0..iters {
        let v = ((i as u64) << 32) | prev as u64;
        acc = acc.wrapping_mul(31).wrapping_add(v);
    }
    acc
}

fn check_ring_results(results: &[Payload], n: u32, iters: u32) {
    for (r, p) in results.iter().enumerate() {
        let got = u64::from_le_bytes(p.as_slice().try_into().expect("8 bytes"));
        assert_eq!(
            got,
            expected_ring_acc(r as u32, n, iters),
            "rank {r}: result diverges from the fault-free execution"
        );
    }
}

// ---------------------------------------------------------------------
// Fault-free runs
// ---------------------------------------------------------------------

#[test]
fn fault_free_allreduce() {
    let results = run_cluster(
        ClusterConfig {
            world: 4,
            ..Default::default()
        },
        |mpi: &mut NodeMpi, _| {
            let mine = vec![mpi.rank().0 as u64 + 1];
            let sum = mpi.allreduce(ReduceOp::Sum, &mine)?;
            Ok(Payload::from_vec(sum[0].to_le_bytes().to_vec()))
        },
        TIMEOUT,
    )
    .unwrap();
    for p in results {
        assert_eq!(
            u64::from_le_bytes(p.as_slice().try_into().unwrap()),
            1 + 2 + 3 + 4
        );
    }
}

#[test]
fn fault_free_ring() {
    let (n, iters) = (4, 300);
    let results = run_cluster(
        ClusterConfig {
            world: n,
            ..Default::default()
        },
        ring_app(iters),
        TIMEOUT,
    )
    .unwrap();
    check_ring_results(&results, n, iters);
}

#[test]
fn fault_free_with_checkpointing_enabled() {
    let (n, iters) = (3, 400);
    let cfg = ClusterConfig {
        world: n,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let results = run_cluster(cfg, ring_app(iters), TIMEOUT).unwrap();
    check_ring_results(&results, n, iters);
}

// ---------------------------------------------------------------------
// Crash / recovery
// ---------------------------------------------------------------------

/// Kill the given ranks at the given delays (ms) while the app runs.
fn run_with_kills(cfg: ClusterConfig, iters: u32, kills: Vec<(u64, u32)>) -> Vec<Payload> {
    let n = cfg.world;
    let cluster = Cluster::launch(cfg, ring_app(iters));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        for (delay_ms, victim) in kills {
            std::thread::sleep(Duration::from_millis(delay_ms));
            handle.kill(Rank(victim));
        }
    });
    let results = cluster
        .wait(TIMEOUT)
        .expect("cluster completes despite kills");
    killer.join().unwrap();
    check_ring_results(&results, n, iters);
    results
}

#[test]
fn kill_one_rank_without_checkpoints() {
    run_with_kills(
        ClusterConfig {
            world: 4,
            ..Default::default()
        },
        600,
        vec![(10, 2)],
    );
}

#[test]
fn kill_one_rank_with_checkpointing() {
    let cfg = ClusterConfig {
        world: 4,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    run_with_kills(cfg, 800, vec![(25, 1)]);
}

#[test]
fn kill_two_ranks_concurrently() {
    run_with_kills(
        ClusterConfig {
            world: 5,
            ..Default::default()
        },
        600,
        vec![(10, 1), (0, 3)],
    );
}

#[test]
fn kill_same_rank_repeatedly() {
    let cfg = ClusterConfig {
        world: 3,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    run_with_kills(cfg, 900, vec![(8, 1), (12, 1), (12, 1)]);
}

#[test]
fn kill_every_rank_once() {
    // n concurrent faults of n processes — the headline claim.
    run_with_kills(
        ClusterConfig {
            world: 4,
            ..Default::default()
        },
        700,
        vec![(8, 0), (4, 1), (4, 2), (4, 3)],
    );
}

#[test]
fn kill_checkpoint_server_then_a_rank() {
    // §4.3: losing a checkpoint component degrades to from-scratch
    // restarts but never breaks correctness.
    let (n, iters) = (4, 500);
    let cfg = ClusterConfig {
        world: n,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, ring_app(iters));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        handle.kill_checkpoint_server();
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(2));
    });
    let results = cluster
        .wait(TIMEOUT)
        .expect("survives checkpoint-server loss");
    killer.join().unwrap();
    check_ring_results(&results, n, iters);
}

// ---------------------------------------------------------------------
// Nondeterministic reception order (ANY_SOURCE) under faults
// ---------------------------------------------------------------------

fn gather_any_app(
    msgs_per_rank: u32,
) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        // Restored state: (received_count, sum) for rank 0; iteration for
        // senders.
        let me = mpi.rank();
        let n = mpi.size();
        if me == Rank(0) {
            let (mut got, mut sum): (u32, u64) = match &restored {
                Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
                None => (0, 0),
            };
            let total = (n - 1) * msgs_per_rank;
            while got < total {
                // Exercise the probe path (logged and replayed, §4.5).
                let _ = mpi.iprobe(Source::Any, Tag::Any)?;
                let (_, _, body) = mpi.recv(Source::Any, Tag::Any)?;
                sum = sum.wrapping_add(u64::from_le_bytes(body.as_slice().try_into().unwrap()));
                got += 1;
                mpi.checkpoint_site(&bincode::serialize(&(got, sum)).unwrap())?;
            }
            Ok(Payload::from_vec(sum.to_le_bytes().to_vec()))
        } else {
            let mut i: u32 = match &restored {
                Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
                None => 0,
            };
            while i < msgs_per_rank {
                let v = (me.0 as u64) * 1000 + i as u64;
                mpi.send(Rank(0), 3, &v.to_le_bytes())?;
                i += 1;
                mpi.checkpoint_site(&bincode::serialize(&i).unwrap())?;
            }
            Ok(Payload::empty())
        }
    }
}

fn expected_any_sum(n: u32, msgs: u32) -> u64 {
    let mut sum = 0u64;
    for r in 1..n {
        for i in 0..msgs {
            sum = sum.wrapping_add(r as u64 * 1000 + i as u64);
        }
    }
    sum
}

#[test]
fn any_source_fault_free() {
    let (n, msgs) = (4, 100);
    let results = run_cluster(
        ClusterConfig {
            world: n,
            ..Default::default()
        },
        gather_any_app(msgs),
        TIMEOUT,
    )
    .unwrap();
    let sum = u64::from_le_bytes(results[0].as_slice().try_into().unwrap());
    assert_eq!(sum, expected_any_sum(n, msgs));
}

#[test]
fn any_source_survives_receiver_crash() {
    // Crash the rank whose nondeterministic reception order must be
    // replayed exactly — the heart of the protocol.
    let (n, msgs) = (4, 200);
    let cfg = ClusterConfig {
        world: n,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, gather_any_app(msgs));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(0));
        std::thread::sleep(Duration::from_millis(15));
        handle.kill(Rank(0));
    });
    let results = cluster.wait(TIMEOUT).expect("receiver recovers");
    killer.join().unwrap();
    let sum = u64::from_le_bytes(results[0].as_slice().try_into().unwrap());
    assert_eq!(sum, expected_any_sum(n, msgs));
}

#[test]
fn any_source_survives_sender_crashes() {
    let (n, msgs) = (4, 150);
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            ..Default::default()
        },
        gather_any_app(msgs),
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(8));
        handle.kill(Rank(1));
        handle.kill(Rank(3));
    });
    let results = cluster.wait(TIMEOUT).expect("senders recover");
    killer.join().unwrap();
    let sum = u64::from_le_bytes(results[0].as_slice().try_into().unwrap());
    assert_eq!(sum, expected_any_sum(n, msgs));
}

// ---------------------------------------------------------------------
// Collectives under faults
// ---------------------------------------------------------------------

#[test]
fn collectives_survive_a_crash() {
    let iters = 150u32;
    let app = move |mpi: &mut NodeMpi, restored: Option<Payload>| {
        let mut st: (u32, u64) = match &restored {
            Some(p) => bincode::deserialize(p.as_slice()).unwrap(),
            None => (0, 0),
        };
        while st.0 < iters {
            let mine = vec![(mpi.rank().0 as u64) + st.0 as u64];
            let sum = mpi.allreduce(ReduceOp::Sum, &mine)?;
            st.1 = st.1.wrapping_add(sum[0]);
            st.0 += 1;
            mpi.checkpoint_site(&bincode::serialize(&st).unwrap())?;
        }
        Ok(Payload::from_vec(st.1.to_le_bytes().to_vec()))
    };
    let n = 4u32;
    let cluster = Cluster::launch(
        ClusterConfig {
            world: n,
            ..Default::default()
        },
        app,
    );
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        handle.kill(Rank(2));
    });
    let results = cluster.wait(TIMEOUT).expect("collectives recover");
    killer.join().unwrap();
    // Expected: sum over iters of (sum over ranks of (r + i)).
    let mut expect = 0u64;
    for i in 0..iters as u64 {
        let round: u64 = (0..n as u64).map(|r| r + i).sum();
        expect = expect.wrapping_add(round);
    }
    for p in results {
        assert_eq!(u64::from_le_bytes(p.as_slice().try_into().unwrap()), expect);
    }
}
