//! Online observability on the live runtime: the invariant monitor
//! watching real engine record streams, and the live health endpoint
//! scraped mid-run.

use mvr_core::{Payload, Rank};
use mvr_mpi::{MpiResult, Source, Tag};
use mvr_obs::{ProtoEvent, SendDisposition};
use mvr_runtime::{Cluster, ClusterConfig, ClusterError, NodeMpi, SchedulerConfig};
use std::io::{Read, Write};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

/// A deterministic ring exchange; each rank returns its iteration count.
fn ring_app(iters: u32) -> impl Fn(&mut NodeMpi, Option<Payload>) -> MpiResult<Payload> {
    move |mpi, restored| {
        let mut iter: u32 = match &restored {
            Some(p) => u32::from_le_bytes(p.as_slice().try_into().expect("4 bytes")),
            None => 0,
        };
        let me = mpi.rank().0;
        let n = mpi.size();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        while iter < iters {
            let token = ((iter as u64) << 32) | me as u64;
            let (_, _, body) = mpi.sendrecv(
                next,
                7,
                &token.to_le_bytes(),
                Source::Rank(prev),
                Tag::Value(7),
            )?;
            let v = u64::from_le_bytes(body.as_slice().try_into().expect("8 bytes"));
            assert_eq!(v >> 32, iter as u64, "wrong iteration in token");
            iter += 1;
            mpi.checkpoint_site(&iter.to_le_bytes())?;
        }
        Ok(Payload::from_vec(iter.to_le_bytes().to_vec()))
    }
}

#[test]
fn monitor_passes_a_clean_run() {
    let cfg = ClusterConfig {
        world: 4,
        monitor: true,
        ..Default::default()
    };
    let results = Cluster::launch(cfg, ring_app(20))
        .wait(TIMEOUT)
        .expect("clean run must not trip the monitor");
    assert_eq!(results.len(), 4);
}

#[test]
fn monitor_stays_clean_through_crash_and_recovery() {
    // Recovery traffic (RESTART handshake, replay, retransmits) obeys
    // the same invariants; a crash must not produce false positives.
    let cfg = ClusterConfig {
        world: 4,
        monitor: true,
        checkpointing: Some(SchedulerConfig {
            interval: Duration::from_millis(1),
            ..Default::default()
        }),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, ring_app(40));
    let handle = cluster.fault_handle();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        handle.kill(Rank(1));
    });
    let results = cluster
        .wait(TIMEOUT)
        .expect("recovery must not trip the monitor");
    killer.join().unwrap();
    assert_eq!(results.len(), 4);
}

#[test]
fn monitor_catches_an_injected_gate_violation() {
    // A rogue recorder (pseudo-rank beyond the world) emits a stream
    // that violates the pessimism gate: a payload transmitted while a
    // reception event is still unacked. The run must fail with
    // InvariantViolated naming the gate invariant.
    let cfg = ClusterConfig {
        world: 2,
        monitor: true,
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, ring_app(10));
    let rogue = cluster.recorder_hub().recorder(7);
    rogue.record(
        1,
        ProtoEvent::Deliver {
            from: 0,
            sender_clock: 5,
            receiver_clock: 1,
            replay: false,
        },
    );
    rogue.record(
        2,
        ProtoEvent::Send {
            to: 0,
            clock: 1,
            bytes: 64,
            disposition: SendDisposition::Wire,
        },
    );
    match cluster.wait(TIMEOUT) {
        Err(ClusterError::InvariantViolated { violation }) => {
            assert_eq!(violation.invariant, "pessimism-gate");
            assert_eq!(violation.rank, 7);
        }
        other => panic!("expected InvariantViolated, got {other:?}"),
    }
}

fn scrape(addr: std::net::SocketAddr) -> Option<String> {
    let mut s = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).ok()?;
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok()?;
    let mut out = String::new();
    s.read_to_string(&mut out).ok()?;
    Some(out)
}

#[test]
fn health_endpoint_serves_a_live_page_mid_run() {
    // Ranks idle long enough for the scraper thread to catch the run in
    // flight; the dispatcher republishes the page every poll tick.
    let app = |_mpi: &mut NodeMpi, _restored: Option<Payload>| {
        for _ in 0..60 {
            std::thread::sleep(Duration::from_millis(4));
        }
        Ok(Payload::from_vec(vec![1]))
    };
    let cfg = ClusterConfig {
        world: 3,
        health_addr: Some("127.0.0.1:0".into()),
        ..Default::default()
    };
    let cluster = Cluster::launch(cfg, app);
    let addr = cluster.health_addr().expect("endpoint bound");
    let scraper = std::thread::spawn(move || {
        // Poll until the dispatcher has published a real page.
        for _ in 0..500 {
            if let Some(page) = scrape(addr) {
                if page.contains("mvr_world") {
                    return Some(page);
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        None
    });
    let results = cluster.wait(TIMEOUT).expect("run completes");
    assert_eq!(results.len(), 3);
    let page = scraper
        .join()
        .unwrap()
        .expect("a live page was scraped before the run ended");
    assert!(page.starts_with("HTTP/1.0 200 OK"), "{page}");
    assert!(page.contains("mvr_up 1"), "{page}");
    assert!(page.contains("mvr_world 3"), "{page}");
    assert!(page.contains("mvr_rank_alive{rank=\"0\"} 1"), "{page}");
    assert!(
        page.contains("mvr_rank_restart_budget_remaining{rank=\"0\"} 256"),
        "{page}"
    );
    assert!(page.contains("mvr_el_events_total{el=\"0\"}"), "{page}");
    assert!(page.contains("mvr_monitor_enabled 0"), "{page}");
    assert!(
        page.contains("mvr_timing_count{interval=\"gate_wait\"}"),
        "{page}"
    );
}
